"""Observability: per-request trace spans, control-plane timelines,
and exporters.

The paper's two schedulers make per-period (Eqs. 1-7) and per-arrival
(Algorithm 1) decisions that aggregate counters cannot attribute: a
high p99 may be queueing, demotion, a breaker quarantine, or a retry
storm, and ``control_stats`` alone cannot say which. This package adds
the three missing views:

- :mod:`repro.obs.spans` — per-request **trace spans** covering
  admission → MLQ level walk (every congestion probe ``P`` vs the
  decayed threshold ``λ·α^k``) → dispatch/gate/demotion → service →
  retry → completion, behind a sampling-rate flag with near-zero
  overhead when disabled;
- :mod:`repro.obs.timeline` — one ordered **control-plane timeline**
  unifying allocation solves (cache-hit / warm-start / fallback
  provenance), breaker transitions, autoscaler actions, replacement
  plans, and injected faults;
- :mod:`repro.obs.exporters` — JSONL span/timeline dumps, a Prometheus
  text-format snapshot, and the run summary behind
  ``python -m repro trace`` (per-level dwell, demotion chains,
  tail-latency attribution).

Schemas for the exported artifacts live in ``repro/obs/schemas`` and
are enforced by :mod:`repro.obs.schema` (no external dependency).
"""

from repro.obs.exporters import (
    format_summary,
    prometheus_snapshot,
    spans_to_jsonl,
    summarize_spans,
    timeline_to_jsonl,
    write_prometheus,
    write_spans_jsonl,
    write_timeline_jsonl,
)
from repro.obs.schema import (
    load_schema,
    validate_instance,
    validate_jsonl,
    validate_prometheus_text,
)
from repro.obs.spans import ObservabilityConfig, RequestSpan, RequestTracer
from repro.obs.timeline import ControlTimeline, TimelineEvent

__all__ = [
    "ControlTimeline",
    "ObservabilityConfig",
    "RequestSpan",
    "RequestTracer",
    "TimelineEvent",
    "format_summary",
    "load_schema",
    "prometheus_snapshot",
    "spans_to_jsonl",
    "summarize_spans",
    "timeline_to_jsonl",
    "validate_instance",
    "validate_jsonl",
    "validate_prometheus_text",
    "write_prometheus",
    "write_spans_jsonl",
    "write_timeline_jsonl",
]
