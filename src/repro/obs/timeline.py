"""The control-plane timeline: one ordered stream of control events.

The control plane acts through four independent subsystems — the
Runtime Scheduler's periodic allocation solves (Eqs. 1-7), the
replacement controller's drain/swap plans, the autoscaler, and the
resilience manager's circuit breakers — each of which previously kept
only private counters. Diagnosing a run ("why did p99 spike at
t=41s?") needs their actions *interleaved in time*: a breaker opening
explains a demotion burst, a replacement drain explains a queue build,
a fallback-hold solve explains a stale allocation. The timeline is
that interleaving: every subsystem records :class:`TimelineEvent`
rows into one shared :class:`ControlTimeline`, append-only and
time-ordered (the simulator's clock is monotonic within a run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The closed set of event categories (mirrored in the JSON schema).
CATEGORIES = (
    "allocation",
    "replacement",
    "autoscaler",
    "breaker",
    "fault",
    "server",
    "pool",
)


@dataclass(frozen=True)
class TimelineEvent:
    """One control-plane action.

    ``category`` names the subsystem (see :data:`CATEGORIES`);
    ``kind`` is the action within it (e.g. ``solve``, ``open``,
    ``scale_out``); ``detail`` carries the event-specific payload
    (JSON-serialisable scalars only).
    """

    time_ms: float
    category: str
    kind: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON form (matches ``timeline_event.schema.json``)."""
        return {
            "time_ms": self.time_ms,
            "category": self.category,
            "kind": self.kind,
            "detail": self.detail,
        }


class ControlTimeline:
    """Append-only, queryable stream of :class:`TimelineEvent` rows."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []

    def record(self, time_ms: float, category: str, kind: str,
               **detail) -> None:
        if category not in CATEGORIES:
            raise ValueError(f"unknown timeline category: {category!r}")
        self.events.append(TimelineEvent(time_ms, category, kind, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def query(self, category: str | None = None, kind: str | None = None,
              since_ms: float = 0.0,
              until_ms: float = float("inf")) -> list[TimelineEvent]:
        """Events filtered by category/kind and half-open time window."""
        return [
            e for e in self.events
            if (category is None or e.category == category)
            and (kind is None or e.kind == kind)
            and since_ms <= e.time_ms < until_ms
        ]

    def counts(self) -> dict[str, int]:
        """``{"category/kind": n}`` histogram of the whole stream."""
        out: dict[str, int] = {}
        for e in self.events:
            key = f"{e.category}/{e.kind}"
            out[key] = out.get(key, 0) + 1
        return out

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]
