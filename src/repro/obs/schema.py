"""Minimal JSON-schema validation for exported artifacts.

CI installs only numpy/scipy/pytest/hypothesis, so this module
implements the small JSON-Schema subset the checked-in schemas use —
``type``, ``required``, ``properties``, ``additionalProperties``
(boolean form), ``items``, ``enum``, ``minimum`` — rather than
depending on ``jsonschema``. Schemas live next to this module under
``repro/obs/schemas/`` and are the contract the CI observability job
validates exporter output against.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SchemaError

SCHEMA_DIR = Path(__file__).parent / "schemas"

#: JSON-Schema ``type`` names → Python type checks. ``bool`` is a
#: subclass of ``int`` in Python, so integer/number must exclude it.
_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def load_schema(name: str) -> dict:
    """Load a checked-in schema by stem (e.g. ``"trace_span"``)."""
    path = SCHEMA_DIR / f"{name}.schema.json"
    if not path.exists():
        raise SchemaError(f"no such schema: {name} (looked in {SCHEMA_DIR})")
    return json.loads(path.read_text())


def _check(instance, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            errors.append(
                f"{path or '$'}: expected {expected}, "
                f"got {type(instance).__name__}"
            )
            return
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path or '$'}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) \
            and instance < schema["minimum"]:
        errors.append(
            f"{path or '$'}: {instance} below minimum {schema['minimum']}"
        )
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path or '$'}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, value in instance.items():
            if key in props:
                _check(value, props[key], f"{path}.{key}", errors)
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path or '$'}: unexpected key {key!r}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            _check(item, schema["items"], f"{path}[{i}]", errors)


def validate_instance(instance, schema: dict) -> list[str]:
    """All violations of ``schema`` by ``instance`` (empty = valid)."""
    errors: list[str] = []
    _check(instance, schema, "", errors)
    return errors


def validate_jsonl(path: str | Path, schema: dict,
                   max_errors: int = 20) -> int:
    """Validate every line of a JSONL file against ``schema``.

    Returns the number of lines validated; raises :class:`SchemaError`
    listing up to ``max_errors`` violations otherwise.
    """
    all_errors: list[str] = []
    count = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                instance = json.loads(line)
            except json.JSONDecodeError as exc:
                all_errors.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            for err in validate_instance(instance, schema):
                all_errors.append(f"line {lineno}: {err}")
            if len(all_errors) >= max_errors:
                break
    if all_errors:
        raise SchemaError(
            f"{path}: {len(all_errors)} violation(s):\n  "
            + "\n  ".join(all_errors[:max_errors])
        )
    return count


def validate_prometheus_text(text: str) -> int:
    """Sanity-check a Prometheus text-format snapshot.

    Enforces the invariants the exporter promises: every sample line
    parses as ``name[{labels}] value``, every metric name has a
    preceding ``# TYPE`` declaration, and no value is NaN. Returns the
    number of sample lines; raises :class:`SchemaError` otherwise.
    """
    declared: set[str] = set()
    samples = 0
    errors: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped"
            ):
                errors.append(f"line {lineno}: malformed TYPE declaration")
            else:
                declared.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        name = name_part.split("{", 1)[0]
        if not name or not name_part:
            errors.append(f"line {lineno}: malformed sample line")
            continue
        base = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        if base not in declared:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE")
        try:
            value = float(value_part)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value_part!r}")
            continue
        if value != value:  # NaN
            errors.append(f"line {lineno}: NaN value for {name!r}")
        samples += 1
    if errors:
        raise SchemaError(
            "prometheus snapshot invalid:\n  " + "\n  ".join(errors)
        )
    return samples
