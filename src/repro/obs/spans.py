"""Per-request trace spans for the dispatch/service life cycle.

A :class:`RequestSpan` records one request's path through the system:
admission, the Algorithm-1 level walk (each congestion probe ``P``
against the decayed threshold ``λ·α^k``), the dispatch verdict
(including demotion and breaker gating), every retry attempt, and the
terminal completion or loss. Spans are sampled per *request* — either
all of a request's attempts are traced or none are — by a deterministic
hash of the request id, so a given ``(request_id, sample_rate)`` pair
yields the same verdict in every run, shard, and process.

Overhead contract
-----------------
``RequestTracer.enabled`` is False when ``sample_rate == 0``; the
simulator then skips every hook behind a single attribute check and
**zero** :class:`RequestSpan` objects are allocated (asserted by the
``total_allocated`` class counter, the same pattern the event pool
uses). ``bench_perf_hotpaths`` gates the tracing-disabled events/s
within 5% of the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Knuth's multiplicative hash constant — spreads sequential request
#: ids uniformly over 32 bits so rate ``r`` samples ~``r`` of them.
_HASH_MULT = 2654435761
_HASH_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing knobs, attached to ``SimulationConfig.observability``.

    ``sample_rate`` is the fraction of requests traced (0 disables
    span tracing entirely; 1 traces every request). ``timeline``
    toggles the control-plane event stream. ``max_spans`` bounds
    retained finished spans (0 = unbounded) so long runs at high
    sample rates cannot exhaust memory.
    """

    sample_rate: float = 0.0
    timeline: bool = True
    max_spans: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )
        if self.max_spans < 0:
            raise ConfigurationError("max_spans must be >= 0")


class RequestSpan:
    """One sampled request's recorded life cycle.

    ``events`` is an ordered list of phase dicts; every dict carries
    ``phase`` and ``t_ms``. Phases and their extra keys:

    - ``admit`` — ``length``, ``attempt``
    - ``probe`` — ``level``, ``p``, ``threshold``, ``verdict``
      (``accepted`` / ``rejected`` / ``gated``)
    - ``dispatch`` — ``level``, ``ideal_level``, ``demoted``,
      ``fallback``, ``instance``
    - ``defer`` — no extras (dispatch failed; request queued)
    - ``retry`` — ``attempt``, ``delay_ms`` (backoff before re-entry)
    - ``first_token`` — ``ttft_ms``, ``batch_size`` (generative data
      plane: the request's first decode step finished)
    - ``lost`` — ``reason``
    - ``complete`` — ``latency_ms``, ``service_ms``, plus
      ``decode_steps`` on the generative path
    """

    __slots__ = (
        "request_id",
        "arrival_ms",
        "length",
        "events",
        "final_phase",
        "latency_ms",
        "service_ms",
        "retry_wait_ms",
        "attempts",
        "level",
        "ideal_level",
        "demoted",
    )

    #: Class-level allocation counter (mirrors the CompletionRecord
    #: pool's) — lets tests assert sampling-off runs allocate nothing.
    total_allocated = 0

    def __init__(self, request_id: int, arrival_ms: float, length: int):
        RequestSpan.total_allocated += 1
        self.request_id = request_id
        self.arrival_ms = arrival_ms
        self.length = length
        self.events: list[dict] = []
        self.final_phase = "open"
        self.latency_ms = 0.0
        self.service_ms = 0.0
        self.retry_wait_ms = 0.0
        self.attempts = 0
        self.level = -1
        self.ideal_level = -1
        self.demoted = False

    @property
    def queue_ms(self) -> float:
        """Latency not explained by service time or retry backoff."""
        return max(0.0, self.latency_ms - self.service_ms - self.retry_wait_ms)

    def to_dict(self) -> dict:
        """JSON-serialisable form (matches ``trace_span.schema.json``)."""
        return {
            "request_id": self.request_id,
            "arrival_ms": self.arrival_ms,
            "length": self.length,
            "final_phase": self.final_phase,
            "latency_ms": self.latency_ms,
            "service_ms": self.service_ms,
            "retry_wait_ms": self.retry_wait_ms,
            "queue_ms": self.queue_ms,
            "attempts": self.attempts,
            "level": self.level,
            "ideal_level": self.ideal_level,
            "demoted": self.demoted,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RequestSpan(id={self.request_id}, phase={self.final_phase}, "
            f"events={len(self.events)})"
        )


class RequestTracer:
    """Collects :class:`RequestSpan` objects for sampled requests.

    The simulator consults :meth:`sampled` once per arrival and keeps a
    span only for hits; every later hook takes the request id and is a
    dict lookup + append. Spans move from ``active`` to ``finished`` on
    their terminal phase (``complete`` or ``lost``).
    """

    __slots__ = ("sample_rate", "_threshold", "max_spans", "active",
                 "finished", "dropped")

    def __init__(self, sample_rate: float, max_spans: int = 0):
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.sample_rate = sample_rate
        # Compare the 32-bit hash against a fixed-point threshold; rate
        # 1.0 must accept every id, so widen past the mask by one.
        self._threshold = (
            _HASH_MASK + 1 if sample_rate >= 1.0
            else int(sample_rate * (_HASH_MASK + 1))
        )
        self.max_spans = max_spans
        self.active: dict[int, RequestSpan] = {}
        self.finished: list[RequestSpan] = []
        #: Finished spans discarded by the ``max_spans`` cap.
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self._threshold > 0

    def sampled(self, request_id: int) -> bool:
        """Deterministic per-request sampling verdict."""
        return ((request_id * _HASH_MULT) & _HASH_MASK) < self._threshold

    # -- life-cycle hooks -------------------------------------------------

    def begin(self, now_ms: float, request_id: int, arrival_ms: float,
              length: int, attempt: int = 0) -> RequestSpan | None:
        """Admission: open (or re-enter, on retry) the request's span.

        Returns the span if the request is sampled, else None — callers
        pass the span to the remaining hooks so re-hashing is avoided.
        """
        if not self.sampled(request_id):
            return None
        span = self.active.get(request_id)
        if span is None:
            span = RequestSpan(request_id, arrival_ms, length)
            self.active[request_id] = span
        span.events.append({
            "phase": "admit", "t_ms": now_ms,
            "length": length, "attempt": attempt,
        })
        return span

    @staticmethod
    def on_probes(span: RequestSpan, now_ms: float,
                  probes: list[tuple[int, float, float, str]]) -> None:
        """Record the Algorithm-1 level walk.

        ``probes`` entries are ``(level, p, threshold, verdict)`` as
        produced by ``ArloRequestScheduler.dispatch_traced``.
        """
        events = span.events
        for level, p, threshold, verdict in probes:
            events.append({
                "phase": "probe", "t_ms": now_ms, "level": level,
                "p": p, "threshold": threshold, "verdict": verdict,
            })

    @staticmethod
    def on_dispatch(span: RequestSpan, now_ms: float, *, level: int,
                    ideal_level: int, instance: str,
                    fallback: bool = False) -> None:
        span.level = level
        span.ideal_level = ideal_level
        span.demoted = level > ideal_level >= 0
        span.attempts += 1
        span.events.append({
            "phase": "dispatch", "t_ms": now_ms, "level": level,
            "ideal_level": ideal_level, "demoted": span.demoted,
            "fallback": fallback, "instance": instance,
        })

    @staticmethod
    def on_defer(span: RequestSpan, now_ms: float) -> None:
        span.events.append({"phase": "defer", "t_ms": now_ms})

    @staticmethod
    def on_retry(span: RequestSpan, now_ms: float, attempt: int,
                 delay_ms: float) -> None:
        span.retry_wait_ms += delay_ms
        span.events.append({
            "phase": "retry", "t_ms": now_ms,
            "attempt": attempt, "delay_ms": delay_ms,
        })

    @staticmethod
    def on_first_token(span: RequestSpan, now_ms: float, ttft_ms: float,
                       batch_size: int) -> None:
        """Generative data plane: the request produced its first token."""
        span.events.append({
            "phase": "first_token", "t_ms": now_ms,
            "ttft_ms": ttft_ms, "batch_size": batch_size,
        })

    def on_lost(self, request_id: int, now_ms: float, reason: str) -> None:
        span = self.active.pop(request_id, None)
        if span is None:
            return
        span.final_phase = "lost"
        span.latency_ms = now_ms - span.arrival_ms
        span.events.append({"phase": "lost", "t_ms": now_ms,
                            "reason": reason})
        self._finish(span)

    def on_complete(self, request_id: int, now_ms: float,
                    service_ms: float,
                    decode_steps: int | None = None) -> None:
        span = self.active.pop(request_id, None)
        if span is None:
            return
        span.final_phase = "complete"
        span.latency_ms = now_ms - span.arrival_ms
        span.service_ms = service_ms
        event = {
            "phase": "complete", "t_ms": now_ms,
            "latency_ms": span.latency_ms, "service_ms": service_ms,
        }
        if decode_steps is not None:
            event["decode_steps"] = decode_steps
        span.events.append(event)
        self._finish(span)

    # -- accounting -------------------------------------------------------

    def _finish(self, span: RequestSpan) -> None:
        if self.max_spans and len(self.finished) >= self.max_spans:
            self.dropped += 1
            return
        self.finished.append(span)

    def completed_spans(self) -> list[RequestSpan]:
        return [s for s in self.finished if s.final_phase == "complete"]

    def stats(self) -> dict[str, float]:
        return {
            "sample_rate": self.sample_rate,
            "finished": len(self.finished),
            "open": len(self.active),
            "dropped": self.dropped,
        }
