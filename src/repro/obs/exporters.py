"""Exporters: JSONL traces, Prometheus text snapshots, run summaries.

Three consumers, three formats:

- **JSONL** — one JSON object per line (span or timeline event), the
  interchange form for offline analysis; schemas under
  ``repro/obs/schemas`` pin the shape.
- **Prometheus text format** — a point-in-time scrape of counters,
  gauges, and the latency sketch rendered as a ``summary`` metric
  (exact count/sum plus sketch quantiles), suitable for a textfile
  collector or a ``/metrics`` endpoint.
- **Run summary** — the human-facing digest behind
  ``python -m repro trace``: per-level dwell times, demotion chains
  (ideal level → chosen level), and tail-latency attribution (how much
  of the slowest requests' latency is queueing vs service vs retry
  backoff).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.spans import RequestSpan
    from repro.obs.timeline import ControlTimeline
    from repro.sim.metrics import StreamingLatencySummary

#: Quantiles rendered into the Prometheus latency summary.
PROM_QUANTILES = (0.5, 0.9, 0.98, 0.99)


# -- JSONL ----------------------------------------------------------------

def spans_to_jsonl(spans: Iterable["RequestSpan"]) -> str:
    """One compact JSON object per span, newline-terminated."""
    return "".join(
        json.dumps(span.to_dict(), separators=(",", ":")) + "\n"
        for span in spans
    )


def write_spans_jsonl(path: str | Path, spans: Iterable["RequestSpan"]) -> int:
    """Write spans as JSONL; returns the number of lines written."""
    text = spans_to_jsonl(spans)
    Path(path).write_text(text)
    return text.count("\n")


def timeline_to_jsonl(timeline: "ControlTimeline") -> str:
    return "".join(
        json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        for event in timeline
    )


def write_timeline_jsonl(path: str | Path, timeline: "ControlTimeline") -> int:
    text = timeline_to_jsonl(timeline)
    Path(path).write_text(text)
    return text.count("\n")


# -- Prometheus text format ----------------------------------------------

def _prom_name(key: str) -> str:
    """Sanitise a stat key into a Prometheus metric-name fragment."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in key)


def prometheus_snapshot(
    counters: dict[str, float] | None = None,
    gauges: dict[str, float] | None = None,
    sketch: "StreamingLatencySummary | None" = None,
    prefix: str = "repro",
    labels: dict[str, str] | None = None,
) -> str:
    """Render a Prometheus text-format (version 0.0.4) snapshot.

    ``counters`` become ``<prefix>_<key>_total`` counters, ``gauges``
    become gauges, and a non-empty ``sketch`` becomes a
    ``<prefix>_latency_ms`` summary with :data:`PROM_QUANTILES`
    quantile rows plus exact ``_sum``/``_count``. An empty sketch is
    omitted entirely — a summary with no observations has no
    well-defined quantiles, and emitting NaNs would poison downstream
    rate() math.
    """
    label_str = ""
    if labels:
        inner = ",".join(
            f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())
        )
        label_str = "{" + inner + "}"

    lines: list[str] = []
    for key, value in sorted((counters or {}).items()):
        name = f"{prefix}_{_prom_name(key)}_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{label_str} {value:g}")
    for key, value in sorted((gauges or {}).items()):
        name = f"{prefix}_{_prom_name(key)}"
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{label_str} {value:g}")

    if sketch is not None and sketch.count > 0:
        name = f"{prefix}_latency_ms"
        lines.append(f"# TYPE {name} summary")
        base = labels.copy() if labels else {}
        for q in PROM_QUANTILES:
            q_labels = ",".join(
                f'{_prom_name(k)}="{v}"'
                for k, v in sorted({**base, "quantile": f"{q:g}"}.items())
            )
            lines.append(f"{name}{{{q_labels}}} {sketch.quantile(q):g}")
        lines.append(f"{name}_sum{label_str} {sketch.total_ms:g}")
        lines.append(f"{name}_count{label_str} {sketch.count}")

    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: str | Path, *args, **kwargs) -> str:
    """:func:`prometheus_snapshot` straight to a file."""
    text = prometheus_snapshot(*args, **kwargs)
    Path(path).write_text(text)
    return text


# -- run summary ----------------------------------------------------------

def summarize_spans(
    spans: list["RequestSpan"], tail_fraction: float = 0.01
) -> dict:
    """Digest a span population for the trace CLI.

    Returns per-level dwell times (count / mean / max latency of
    completed requests dispatched at each level), demotion chains
    (``"ideal->chosen"`` counts for every demoted or promoted-by-
    fallback request), and tail-latency attribution: for the slowest
    ``tail_fraction`` of completed requests, the share of total
    latency spent queueing vs in service vs waiting out retry backoff.
    """
    completed = [s for s in spans if s.final_phase == "complete"]
    lost = [s for s in spans if s.final_phase == "lost"]

    levels: dict[int, dict] = {}
    for s in completed:
        row = levels.setdefault(
            s.level, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        row["count"] += 1
        row["total_ms"] += s.latency_ms
        row["max_ms"] = max(row["max_ms"], s.latency_ms)
    per_level = {
        level: {
            "count": row["count"],
            "mean_ms": row["total_ms"] / row["count"],
            "max_ms": row["max_ms"],
        }
        for level, row in sorted(levels.items())
    }

    chains: dict[str, int] = {}
    for s in completed:
        if s.level != s.ideal_level and s.ideal_level >= 0:
            key = f"{s.ideal_level}->{s.level}"
            chains[key] = chains.get(key, 0) + 1

    attribution = {}
    if completed:
        ordered = sorted(completed, key=lambda s: s.latency_ms, reverse=True)
        n_tail = max(1, int(len(ordered) * tail_fraction))
        tail = ordered[:n_tail]
        total = sum(s.latency_ms for s in tail) or 1.0
        attribution = {
            "tail_count": n_tail,
            "threshold_ms": tail[-1].latency_ms,
            "queue_share": sum(s.queue_ms for s in tail) / total,
            "service_share": sum(s.service_ms for s in tail) / total,
            "retry_share": sum(s.retry_wait_ms for s in tail) / total,
        }

    probes = sum(
        1 for s in spans for e in s.events if e["phase"] == "probe"
    )
    return {
        "spans": len(spans),
        "completed": len(completed),
        "lost": len(lost),
        "demoted": sum(1 for s in completed if s.demoted),
        "retries": sum(max(0, s.attempts - 1) for s in completed),
        "probes": probes,
        "per_level": per_level,
        "demotion_chains": dict(sorted(chains.items())),
        "tail_attribution": attribution,
    }


def format_summary(summary: dict, scheme_name: str = "") -> str:
    """Human-readable rendering of :func:`summarize_spans` output."""
    lines = []
    title = f"trace summary — {scheme_name}" if scheme_name else "trace summary"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(
        f"spans: {summary['spans']}  completed: {summary['completed']}  "
        f"lost: {summary['lost']}  demoted: {summary['demoted']}  "
        f"retries: {summary['retries']}  probes: {summary['probes']}"
    )
    if summary["per_level"]:
        lines.append("")
        lines.append("per-level dwell (completed requests):")
        lines.append(f"  {'level':>5}  {'count':>8}  {'mean_ms':>10}  {'max_ms':>10}")
        for level, row in summary["per_level"].items():
            lines.append(
                f"  {level:>5}  {row['count']:>8}  "
                f"{row['mean_ms']:>10.2f}  {row['max_ms']:>10.2f}"
            )
    if summary["demotion_chains"]:
        lines.append("")
        lines.append("demotion chains (ideal->chosen: count):")
        for chain, count in summary["demotion_chains"].items():
            lines.append(f"  {chain}: {count}")
    tail = summary["tail_attribution"]
    if tail:
        lines.append("")
        lines.append(
            f"tail attribution (slowest {tail['tail_count']} requests, "
            f">= {tail['threshold_ms']:.2f} ms):"
        )
        lines.append(
            f"  queue {100 * tail['queue_share']:.1f}%  "
            f"service {100 * tail['service_share']:.1f}%  "
            f"retry backoff {100 * tail['retry_share']:.1f}%"
        )
    return "\n".join(lines)
