"""Exception hierarchy for the Arlo reproduction.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch package failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SolverError(ReproError):
    """The LP/MILP solver failed (infeasible, unbounded, or iteration cap)."""


class InfeasibleError(SolverError):
    """The optimisation problem has no feasible solution."""


class UnboundedError(SolverError):
    """The LP relaxation is unbounded."""


class DeadlineExceeded(SolverError):
    """A budgeted solve ran out of wall-clock budget with no incumbent.

    Raised only when a deadline expires *before any feasible allocation
    exists*; a budgeted solver that already holds an incumbent returns
    it (flagged ``interrupted``) instead of raising.
    """


class SchedulingError(ReproError):
    """A scheduling component was asked to do something impossible."""


class CapacityError(SchedulingError):
    """A request cannot be served by any deployed runtime."""


class AdmissionError(SchedulingError):
    """A request was shed at admission; carries the typed rejection.

    ``rejection`` is a :class:`repro.resilience.admission.Rejection`
    describing why (unservable length, no active runtime, or a missed
    deadline on every candidate level).
    """

    def __init__(self, rejection) -> None:
        super().__init__(str(rejection))
        self.rejection = rejection


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class EmptySketchError(SimulationError):
    """A quantile/stats query hit a sketch holding zero samples.

    Typed so exporters can refuse to serialize an empty summary
    instead of emitting NaNs into a metrics endpoint.
    """


class SchemaError(ReproError):
    """An exported artifact does not match its checked-in schema."""


class ProfileError(ReproError):
    """A runtime profile is missing or malformed."""


class TraceError(ReproError):
    """A workload trace is malformed (unsorted, negative, empty...)."""
