"""O(1) congestion accounting for the data path.

The autoscaler samples cluster utilisation every second of simulated
time and snapshots read ``total_outstanding`` constantly; recomputing
those by iterating every instance is O(instances) work on the hot path.
The :class:`CongestionTracker` instead maintains the aggregates through
the instance lifecycle transitions themselves, so every query is O(1):

- ``activate``/``deactivate`` move an instance's outstanding work and
  capacity into/out of the *active* aggregates (deploy, resume vs
  drain, suspend, crash, retire);
- ``on_enqueue``/``on_complete`` adjust per-level outstanding by ±1;
- crash/blackout work loss flows through ``on_loss`` so the all-status
  outstanding total (which includes draining donors) stays exact.

Membership is tracked per instance id, making every transition
idempotent — a double ``deactivate`` (e.g. drain followed by crash)
cannot double-subtract. :meth:`verify` recomputes the aggregates from
scratch so tests can certify conservation under arbitrary interleavings
of retries, quarantine, and replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class CongestionTracker:
    """Per-level outstanding/capacity aggregates over active instances."""

    num_levels: int
    #: Outstanding work per level, active instances only. Plain Python
    #: lists, not arrays: ``on_enqueue``/``on_complete`` run twice per
    #: simulated request, and a scalar numpy ``arr[i] += 1`` costs ~10×
    #: a list element update.
    outstanding: list[int] = field(init=False)
    #: Σ capacity (M_i) per level, active instances only.
    capacity: list[int] = field(init=False)
    #: Active instance count per level (the allocation vector ``N``).
    active: list[int] = field(init=False)
    #: Outstanding over *all* live instances (active + draining), the
    #: quantity ``ClusterState.total_outstanding`` reports.
    all_outstanding: int = field(default=0, init=False)
    #: Requests currently inside a decode batch per level, over *all*
    #: live instances (like ``all_outstanding``, not gated on active
    #: membership — a draining donor keeps decoding its batch). Always
    #: zero on the discriminative path; the generative event loop
    #: maintains it so congestion probes and the allocation reports can
    #: split a level's outstanding into queued-vs-decoding phases.
    decoding: list[int] = field(init=False)
    _counted: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise ConfigurationError("need at least one level")
        self.outstanding = [0] * self.num_levels
        self.capacity = [0] * self.num_levels
        self.active = [0] * self.num_levels
        self.decoding = [0] * self.num_levels

    # -- lifecycle transitions ------------------------------------------------
    def activate(self, instance) -> None:
        """Count an instance as active (deploy / blackout resume)."""
        if instance.instance_id in self._counted:
            return
        self._counted.add(instance.instance_id)
        lvl = instance.runtime_index
        self.outstanding[lvl] += instance.outstanding
        self.capacity[lvl] += instance.capacity
        self.active[lvl] += 1

    def deactivate(self, instance) -> None:
        """Stop counting an instance (drain/suspend/crash/retire)."""
        if instance.instance_id not in self._counted:
            return
        self._counted.discard(instance.instance_id)
        lvl = instance.runtime_index
        self.outstanding[lvl] -= instance.outstanding
        self.capacity[lvl] -= instance.capacity
        self.active[lvl] -= 1

    # -- work accounting ------------------------------------------------------
    def on_enqueue(self, instance) -> None:
        """One request admitted (called after ``outstanding += 1``)."""
        self.all_outstanding += 1
        if instance.instance_id in self._counted:
            self.outstanding[instance.runtime_index] += 1

    def on_enqueue_many(self, instance, count: int) -> None:
        """``count`` requests admitted in one batch dispatch (called
        after ``outstanding += count``). Exactly ``count`` scalar
        :meth:`on_enqueue` calls, folded into two adds — the batch
        dispatcher's aggregate hook."""
        self.all_outstanding += count
        if instance.instance_id in self._counted:
            self.outstanding[instance.runtime_index] += count

    def on_complete(self, instance) -> None:
        """One request finished (called after ``outstanding -= 1``)."""
        self.all_outstanding -= 1
        if instance.instance_id in self._counted:
            self.outstanding[instance.runtime_index] -= 1

    def on_loss(self, outstanding_lost: int) -> None:
        """Work voided in bulk by a crash/blackout (before zeroing).

        The per-level active aggregates are reconciled by the matching
        ``deactivate``; only the all-status total needs the explicit
        delta because the lost requests never complete.
        """
        self.all_outstanding -= outstanding_lost

    # -- decode-phase accounting (generative data plane) -----------------------
    def on_decode_start(self, instance) -> None:
        """One request joined an instance's decode batch."""
        self.decoding[instance.runtime_index] += 1

    def on_decode_end(self, instance) -> None:
        """One request finished (or left) its decode batch."""
        self.decoding[instance.runtime_index] -= 1

    def on_decode_loss(self, instance, count: int) -> None:
        """``count`` in-batch requests voided by a crash/blackout."""
        self.decoding[instance.runtime_index] -= count

    # -- O(1) queries ----------------------------------------------------------
    def allocation(self) -> np.ndarray:
        """Active instance counts per level (the ILP's ``N`` vector)."""
        return np.asarray(self.active, dtype=np.int64)

    def total_outstanding_active(self) -> int:
        return sum(self.outstanding)

    def total_capacity(self) -> int:
        return sum(self.capacity)

    def utilization(self) -> float:
        """Outstanding over within-SLO capacity across active instances
        (can exceed 1); 1.0 when no capacity is deployed."""
        cap = sum(self.capacity)
        if cap == 0:
            return 1.0
        return sum(self.outstanding) / cap

    def level_congestion(self, level: int) -> float:
        """Aggregate ``P = outstanding / capacity`` of one level."""
        cap = int(self.capacity[level])
        if cap == 0:
            return float("inf") if self.outstanding[level] else 0.0
        return int(self.outstanding[level]) / cap

    def level_decode_occupancy(self, level: int) -> int:
        """Requests currently decoding at one level (all live instances)."""
        return self.decoding[level]

    def total_decoding(self) -> int:
        return sum(self.decoding)

    # -- certification ---------------------------------------------------------
    def verify(self, instances) -> None:
        """Recompute from scratch and assert the counters conserve.

        ``instances`` is any iterable of live instances (e.g.
        ``cluster.instances.values()``). Raises ``AssertionError`` on
        the first divergence — used by tests and debug builds.
        """
        outstanding = [0] * self.num_levels
        capacity = [0] * self.num_levels
        active = [0] * self.num_levels
        total_all = 0
        for inst in instances:
            total_all += inst.outstanding
            if inst.is_active:
                outstanding[inst.runtime_index] += inst.outstanding
                capacity[inst.runtime_index] += inst.capacity
                active[inst.runtime_index] += 1
        assert np.array_equal(outstanding, self.outstanding), (
            f"outstanding diverged: {self.outstanding} != {outstanding}"
        )
        assert np.array_equal(capacity, self.capacity), (
            f"capacity diverged: {self.capacity} != {capacity}"
        )
        assert np.array_equal(active, self.active), (
            f"active diverged: {self.active} != {active}"
        )
        assert total_all == self.all_outstanding, (
            f"all-status outstanding diverged: "
            f"{self.all_outstanding} != {total_all}"
        )
