"""Control-plane and data-path performance primitives.

The paper makes control overhead a first-class metric (Table 2's ILP
solve times); this package keeps it near-constant in practice:

- :mod:`repro.perf.cache` — memoization of solved allocations keyed by
  a canonicalized demand histogram + instance budget, with TTL and
  profile-fingerprint invalidation.
- :mod:`repro.perf.incremental` — exact sliding-window histograms
  updated per arrival (never rebuilt per period).
- :mod:`repro.perf.counters` — O(1) outstanding/capacity congestion
  aggregates maintained through instance lifecycle transitions.
- :mod:`repro.perf.anytime` — deadline-bounded solver policy ladder
  (greedy → local → DP → MILP) that always holds a feasible allocation
  and upgrades it while wall-clock budget remains.
- :mod:`repro.perf.forecast` — Holt–Winters demand forecaster feeding
  forecast-driven pre-solves into the allocation cache.
"""

from repro.perf.anytime import DEFAULT_LADDER, LadderRung, RUNGS, solve_anytime
from repro.perf.cache import AllocationCache, CachedAllocation
from repro.perf.counters import CongestionTracker
from repro.perf.forecast import DemandForecaster
from repro.perf.incremental import IncrementalHistogram

__all__ = [
    "AllocationCache",
    "CachedAllocation",
    "CongestionTracker",
    "DEFAULT_LADDER",
    "DemandForecaster",
    "IncrementalHistogram",
    "LadderRung",
    "RUNGS",
    "solve_anytime",
]
