"""Deadline-bounded anytime solver ladder for the Eq. 1–7 allocation.

The Runtime Scheduler must hold a *feasible* allocation at every period
boundary, however tight the control period. Instead of picking one
solver and hoping it finishes, :func:`solve_anytime` climbs a **policy
ladder** — a registry of optimisation levels ordered cheapest-first
(mirroring the ``FUNCS`` ladder shape of the stroboscope scheduler
exemplar)::

    greedy (O(I) first-fit)  →  local (steepest descent)
        →  dp (exact Pareto-label DP)  →  milp (branch & bound)

Each rung is budgeted with the wall-clock time remaining under the
caller's deadline and warm-started from the best incumbent so far, so

- a feasible allocation exists after the first rung (microseconds), and
- every later rung can only *improve* the incumbent: rung results are
  accepted only when strictly better, and the budgeted solvers return
  their warm-start incumbent (never something worse) on expiry.

The result is an :class:`~repro.core.allocation.AllocationResult` whose
``stats`` record the full climb: per-rung objective/elapsed/interrupted,
the rung the incumbent came from, and whether the deadline was met.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.allocation import (
    _DP_SCALE_LIMIT,
    AllocationProblem,
    AllocationResult,
    solve_dp,
    solve_greedy,
    solve_local_search,
    solve_milp_encoding,
)
from repro.errors import ConfigurationError, DeadlineExceeded, SolverError

#: Below this fraction of the original deadline remaining, a rung is not
#: worth entering: it would almost certainly expire before improving on
#: the incumbent and the poll-granularity overrun risks the deadline.
_MIN_BUDGET_FRAC = 0.1

#: Fraction of the deadline reserved as overrun headroom. Budgeted
#: solvers poll the clock at a finite granularity (every ~128 DP label
#: expansions, every descent-move sweep) and the ladder itself spends a
#: little between rungs; handing a rung the *full* remaining budget
#: would let those overruns breach the caller's deadline.
_SAFETY_FRAC = 0.1

#: The MILP validation rung builds O(I·G) binaries — model construction
#: alone blows a realtime deadline beyond small pools.
_MILP_MAX_GPUS = 30


@dataclass(frozen=True)
class LadderRung:
    """One optimisation level of the anytime ladder."""

    name: str
    #: Budgeted solver: (problem, relax, warm_start, budget_s) → result.
    solve: Callable[..., AllocationResult]
    #: Exact rungs end the climb early when they finish uninterrupted —
    #: no later rung can improve on a proven optimum.
    exact: bool = False
    #: Skip the rung entirely when the remaining budget is below this
    #: fraction of the full deadline.
    min_budget_frac: float = _MIN_BUDGET_FRAC
    #: Problem-shape gate; rungs unsuited to an instance are skipped.
    suitable: Callable[[AllocationProblem], bool] = lambda problem: True


#: Registry of ladder rungs, cheapest first (the stroboscope ``FUNCS``
#: shape: name → strategy, climbed under a budget).
#:
#: The DP rung is gated to the same scale the ``auto`` solver uses it
#: at (≤ ``_DP_SCALE_LIMIT`` GPUs). Beyond that a full DP sweep takes
#: seconds, so a realtime budget can never let it finish — and its
#: millions of label tuples trigger GC pauses long enough to blow a
#: 50 ms deadline *between* two clock polls. A rung that can only ever
#: burn budget and risk the deadline is not an upgrade path.
RUNGS: dict[str, LadderRung] = {
    "greedy": LadderRung(name="greedy", solve=solve_greedy, min_budget_frac=0.0),
    "local": LadderRung(name="local", solve=solve_local_search),
    "dp": LadderRung(
        name="dp",
        solve=solve_dp,
        exact=True,
        suitable=lambda problem: problem.num_gpus <= _DP_SCALE_LIMIT,
    ),
    "milp": LadderRung(
        name="milp",
        solve=solve_milp_encoding,
        suitable=lambda problem: problem.num_gpus <= _MILP_MAX_GPUS,
    ),
}

#: Default climb order. ``milp`` last: it is a validation encoding whose
#: epigraph objective is a lower-bound approximation — useful as a
#: cross-check on small pools, never better than a finished DP.
DEFAULT_LADDER: tuple[str, ...] = ("greedy", "local", "dp", "milp")


def resolve_ladder(names: tuple[str, ...] | list[str] | None) -> tuple[LadderRung, ...]:
    """Map rung names to registry entries, validating unknown names."""
    picked = tuple(names) if names else DEFAULT_LADDER
    if not picked:
        raise ConfigurationError("ladder needs at least one rung")
    rungs = []
    for name in picked:
        try:
            rungs.append(RUNGS[name])
        except KeyError:
            raise ConfigurationError(
                f"unknown ladder rung {name!r}; options: {sorted(RUNGS)}"
            ) from None
    return tuple(rungs)


def solve_anytime(
    problem: AllocationProblem,
    deadline_s: float,
    ladder: tuple[str, ...] | list[str] | None = None,
    relax: bool = False,
    warm_start: np.ndarray | None = None,
) -> AllocationResult:
    """Climb the solver ladder within a wall-clock deadline.

    Returns the best incumbent found, as an ``AllocationResult`` with
    ``solver="anytime"`` and stats::

        rung          name of the rung that produced the incumbent
        rungs         [{name, objective, elapsed_ms, interrupted,
                        accepted, gap}, ...] in climb order (gap is the
                       relative objective excess vs the final incumbent)
        elapsed_ms    total wall clock
        deadline_ms   the requested deadline
        deadline_hit  True iff elapsed_ms <= deadline_ms

    Guarantees:

    - **Feasible-first**: the first suitable rung (``greedy`` in the
      default ladder) is entered regardless of remaining budget, so a
      feasible incumbent exists unless the problem itself is infeasible.
    - **Monotone**: a rung's result replaces the incumbent only when
      strictly better; the held allocation never degrades mid-climb.
    - **Early exit**: an exact rung that finishes uninterrupted ends the
      climb — its objective is the proven optimum.

    Raises :class:`InfeasibleError` when the problem has no feasible
    allocation, and :class:`DeadlineExceeded` only in the degenerate
    case where every rung errored and no incumbent exists.
    """
    if deadline_s <= 0:
        raise ConfigurationError(f"deadline must be positive, got {deadline_s}")
    start = time.perf_counter()
    expires_at = start + deadline_s
    rungs = resolve_ladder(ladder)

    incumbent: AllocationResult | None = None
    incumbent_alloc = np.asarray(warm_start) if warm_start is not None else None
    rung_log: list[dict] = []
    best_rung = ""
    last_error: SolverError | None = None

    for rung in rungs:
        remaining = expires_at - time.perf_counter()
        if incumbent is not None:
            if remaining <= 0:
                break
            if remaining < rung.min_budget_frac * deadline_s:
                continue
            if not rung.suitable(problem):
                continue
        elif not rung.suitable(problem):
            continue
        rung_start = time.perf_counter()
        try:
            result = rung.solve(
                problem,
                relax=relax,
                warm_start=incumbent_alloc,
                # The first feasible incumbent must exist whatever the
                # clock says: give the bootstrap rung a real budget.
                budget_s=max(remaining - _SAFETY_FRAC * deadline_s, 1e-4),
            )
        except DeadlineExceeded as exc:
            last_error = exc
            rung_log.append({
                "name": rung.name,
                "objective": None,
                "elapsed_ms": (time.perf_counter() - rung_start) * 1e3,
                "interrupted": True,
                "accepted": False,
            })
            continue
        except SolverError:
            # Infeasibility is a property of the problem, not the rung:
            # no later rung can fix it. Errors before any incumbent
            # exists must surface; with an incumbent in hand they are
            # rung-local (e.g. milp encoding trouble) and skippable.
            if incumbent is None:
                raise
            last_error = None
            rung_log.append({
                "name": rung.name,
                "objective": None,
                "elapsed_ms": (time.perf_counter() - rung_start) * 1e3,
                "interrupted": False,
                "accepted": False,
            })
            continue
        interrupted = bool(result.stats.get("interrupted", False))
        accepted = incumbent is None or result.objective < incumbent.objective - 1e-12
        if accepted:
            incumbent = result
            incumbent_alloc = result.allocation
            best_rung = rung.name
        rung_log.append({
            "name": rung.name,
            "objective": float(result.objective),
            "elapsed_ms": (time.perf_counter() - rung_start) * 1e3,
            "interrupted": interrupted,
            "accepted": accepted,
        })
        if rung.exact and not interrupted:
            break  # proven optimum — nothing above can improve it

    if incumbent is None:
        raise last_error or DeadlineExceeded(
            f"anytime ladder found no incumbent within {deadline_s * 1e3:.1f} ms"
        )
    elapsed_ms = (time.perf_counter() - start) * 1e3
    best = incumbent.objective
    for entry in rung_log:
        obj = entry["objective"]
        entry["gap"] = (
            None if obj is None else (obj - best) / max(abs(best), 1e-12)
        )
    return AllocationResult(
        allocation=incumbent.allocation,
        objective=incumbent.objective,
        solver="anytime",
        solve_time_s=elapsed_ms / 1e3,
        relaxed=relax,
        stats={
            "rung": best_rung,
            "rungs": rung_log,
            "elapsed_ms": elapsed_ms,
            "deadline_ms": deadline_s * 1e3,
            "deadline_hit": elapsed_ms <= deadline_s * 1e3,
            "warm_started": warm_start is not None,
        },
    )
