"""Exact sliding-window histograms with per-arrival updates.

The demand estimator needs, at any instant, the per-bin arrival counts
inside a trailing time window. Rebuilding that histogram per decision
period is O(window) work at exactly the moment the control plane should
be cheap; this structure instead pays O(1) amortised per arrival —
append on observe, pop expired events from the front — and answers
``counts``/``total``/``oldest_ms`` in O(1).

Semantics are *exact*: an event at time ``t`` is inside the window at
``now`` iff ``t >= now - window_ms`` (events exactly at the horizon
survive, matching right-open eviction ``t < horizon``). The batch
rebuild in :meth:`rebuild` exists so tests can certify the incremental
path against recomputation from raw events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class IncrementalHistogram:
    """Per-bin counts over a trailing window, updated per arrival."""

    num_bins: int
    window_ms: float
    _events: deque = field(default_factory=deque, repr=False)  # (time_ms, bin)
    _counts: np.ndarray = field(init=False, repr=False)
    _total: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.num_bins < 1:
            raise ConfigurationError("need at least one bin")
        if self.window_ms <= 0:
            raise ConfigurationError("window must be positive")
        self._counts = np.zeros(self.num_bins, dtype=np.int64)

    def __len__(self) -> int:
        return self._total

    @property
    def total(self) -> int:
        """Events currently inside the window — O(1)."""
        return self._total

    @property
    def counts(self) -> np.ndarray:
        """Live per-bin counts (read-only view; copy before mutating)."""
        return self._counts

    def snapshot(self) -> np.ndarray:
        """Defensive copy of the per-bin counts."""
        return self._counts.copy()

    def oldest_ms(self) -> float | None:
        """Timestamp of the oldest in-window event, None when empty."""
        return self._events[0][0] if self._events else None

    def add(self, now_ms: float, bin_index: int) -> None:
        """Record one event and evict anything that fell off the window."""
        if not 0 <= bin_index < self.num_bins:
            raise ConfigurationError(
                f"bin {bin_index} outside [0, {self.num_bins})"
            )
        self._events.append((now_ms, bin_index))
        self._counts[bin_index] += 1
        self._total += 1
        self.evict(now_ms)

    def add_batch(self, times_ms: np.ndarray, bins: np.ndarray) -> None:
        """Record many time-ordered events at once (trace replay)."""
        times_ms = np.asarray(times_ms, dtype=float)
        bins = np.asarray(bins, dtype=np.int64)
        if times_ms.shape != bins.shape:
            raise ConfigurationError("times and bins must align")
        if bins.size == 0:
            return
        if bins.min() < 0 or bins.max() >= self.num_bins:
            raise ConfigurationError("bin index outside the histogram")
        # tolist() + extend run entirely in C; a Python-level loop over
        # numpy scalars costs ~20× as much on million-arrival traces.
        self._events.extend(zip(times_ms.tolist(), bins.tolist()))
        self._counts += np.bincount(bins, minlength=self.num_bins)
        self._total += int(bins.size)
        self.evict(float(times_ms[-1]))

    def evict(self, now_ms: float) -> int:
        """Drop events older than ``now - window``; returns the count."""
        horizon = now_ms - self.window_ms
        dropped = 0
        events, counts = self._events, self._counts
        while events and events[0][0] < horizon:
            _, b = events.popleft()
            counts[b] -= 1
            dropped += 1
        self._total -= dropped
        return dropped

    def rebuild(self) -> np.ndarray:
        """Batch recompute from raw events (test oracle for ``counts``)."""
        fresh = np.zeros(self.num_bins, dtype=np.int64)
        for _, b in self._events:
            fresh[b] += 1
        return fresh
