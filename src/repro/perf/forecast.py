"""Per-period demand forecasting for forecast-driven solve-ahead.

The control plane observes one demand vector ``Q`` (per-runtime
arrivals within an SLO window, from
:class:`repro.core.demand.DemandEstimator`'s sliding
:class:`~repro.perf.incremental.IncrementalHistogram`) per scheduler
period. :class:`DemandForecaster` layers a vector-valued Holt–Winters
additive model on that series — an EWMA **level** per histogram bin
plus an optional additive **seasonal** component with a fixed period —
and predicts the next period's vector so the scheduler can pre-solve
the forecast allocation into the :class:`~repro.perf.cache.
AllocationCache` during idle time (the Shockwave ``future_nrounds``
pattern applied to Arlo's Eq. 1–7).

No trend term: demand levels in the drifting traces are mean-reverting
AR(1) walks, where a trend extrapolates noise. Seasonality is optional
(``season_length=0`` disables it) and additive, matching the additive
per-bin composition of the histogram.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_EPS = 1e-9


class DemandForecaster:
    """Holt–Winters (level + optional additive seasonal) per-bin forecast.

    Parameters
    ----------
    num_bins:
        Dimension of the demand vector (number of runtime levels).
    alpha:
        EWMA smoothing factor for the level, in (0, 1]. Higher tracks
        drift faster; lower smooths arrival noise harder.
    season_length:
        Periods per seasonal cycle; 0 disables the seasonal component.
    gamma:
        Seasonal smoothing factor, in (0, 1]. Ignored when
        ``season_length == 0``.
    """

    def __init__(
        self,
        num_bins: int,
        alpha: float = 0.35,
        season_length: int = 0,
        gamma: float = 0.25,
    ) -> None:
        if num_bins < 1:
            raise ConfigurationError("num_bins must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if season_length < 0:
            raise ConfigurationError("season_length cannot be negative")
        if season_length and not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        self.num_bins = int(num_bins)
        self.alpha = float(alpha)
        self.season_length = int(season_length)
        self.gamma = float(gamma)
        self._level: np.ndarray | None = None
        self._seasonal = (
            np.zeros((self.season_length, self.num_bins))
            if self.season_length
            else None
        )
        self._phase = 0  # index of the *next* observation's seasonal slot
        self._pending: np.ndarray | None = None  # prediction awaiting truth
        self._observations = 0
        self._error_sum = 0.0
        self._error_count = 0
        self._last_error: float | None = None

    # -- update ---------------------------------------------------------------
    def observe(self, demand: np.ndarray) -> None:
        """Fold one period's realized demand vector into the model.

        Scores the outstanding prediction (if any) against the realized
        vector before updating, so :meth:`error_stats` always reflects
        honest one-step-ahead errors.
        """
        y = np.asarray(demand, dtype=float)
        if y.shape != (self.num_bins,):
            raise ConfigurationError(
                f"expected demand shape ({self.num_bins},), got {y.shape}"
            )
        if self._pending is not None:
            # Symmetric denominator: score against the larger of the
            # realized and predicted L1 masses so an idle period (y ≈ 0)
            # with a tiny forecast reads as a small error instead of
            # dividing the miss by ~EPS and blowing up mean_rel_error.
            denom = max(
                float(np.abs(y).sum()),
                float(np.abs(self._pending).sum()),
                _EPS,
            )
            err = float(np.abs(y - self._pending).sum()) / denom
            self._error_sum += err
            self._error_count += 1
            self._last_error = err
        if self._seasonal is not None:
            slot = self._phase % self.season_length
            seasonal = self._seasonal[slot]
            if self._level is None:
                self._level = y - seasonal  # seasonal starts at 0 ⇒ level = y
            else:
                self._level = (
                    self.alpha * (y - seasonal) + (1.0 - self.alpha) * self._level
                )
            self._seasonal[slot] = (
                self.gamma * (y - self._level) + (1.0 - self.gamma) * seasonal
            )
        else:
            if self._level is None:
                self._level = y.copy()
            else:
                self._level = self.alpha * y + (1.0 - self.alpha) * self._level
        self._phase += 1
        self._observations += 1
        self._pending = self.predict()

    # -- query ----------------------------------------------------------------
    def predict(self) -> np.ndarray | None:
        """Forecast the next period's demand vector (clipped at 0).

        None until the first observation — predicting from nothing
        would pre-solve garbage into the cache.
        """
        if self._level is None:
            return None
        forecast = self._level
        if self._seasonal is not None:
            forecast = forecast + self._seasonal[self._phase % self.season_length]
        return np.maximum(forecast, 0.0)

    @property
    def observations(self) -> int:
        return self._observations

    def error_stats(self) -> dict:
        """One-step-ahead relative-L1 forecast error summary."""
        return {
            "observations": self._observations,
            "scored_predictions": self._error_count,
            "mean_rel_error": (
                self._error_sum / self._error_count if self._error_count else None
            ),
            "last_rel_error": self._last_error,
        }
