"""Memoization of solved allocations (the Runtime Scheduler's hot loop).

The Eq. 1–7 optimum is a pure function of (demand histogram, instance
budget, profiled performance, relaxation flag, solver choice). Traffic
is self-similar across the 120 s decision periods, so consecutive
periods frequently present the *same* canonicalized demand — re-solving
is pure waste. The cache stores full :class:`AllocationResult` payloads
under an exact canonical key and answers two queries:

- :meth:`AllocationCache.lookup` — exact hit: the stored allocation is
  bit-identical to what the solver would return (solvers are
  deterministic), so hits skip the ILP entirely;
- :meth:`AllocationCache.nearest` — the stored allocation whose demand
  is closest (L1) to the current one, used to *warm-start* the solver
  when there is no exact hit.

Invalidation contract (documented in docs/PERFORMANCE.md):

- the key embeds the instance budget (``num_gpus``) → fleet changes
  can never alias;
- the key embeds a profile fingerprint (capacities, service times,
  overhead) → re-profiling or registry changes can never alias;
- entries expire ``ttl_ms`` after insertion (sim clock) → a bounded
  staleness window even if a caller forgets to invalidate;
- :meth:`AllocationCache.invalidate` drops everything (operator
  escape hatch, also wired to explicit fleet/profile change events).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError

#: Demand histograms are rounded to this many decimals before keying.
#: It only collapses float noise (1e-6 requests per SLO window is far
#: below anything the estimator can resolve); two demands that differ
#: meaningfully always produce distinct keys.
_KEY_DECIMALS = 6


@dataclass(frozen=True)
class CachedAllocation:
    """One memoized solve."""

    key: tuple
    num_gpus: int
    fingerprint: str
    demand: np.ndarray
    result: "AllocationResult"  # noqa: F821 - forward ref, avoids cycle
    stored_at_ms: float


def profile_fingerprint(capacity, service_ms, overhead_ms: float) -> str:
    """Stable digest of the profiled performance feeding the ILP."""
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(capacity, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(service_ms, dtype=np.float64).tobytes())
    h.update(np.float64(overhead_ms).tobytes())
    return h.hexdigest()


def canonical_demand(demand: np.ndarray) -> np.ndarray:
    """Canonicalized demand histogram used for cache keying."""
    return np.round(np.asarray(demand, dtype=np.float64), _KEY_DECIMALS)


@dataclass
class AllocationCache:
    """LRU + TTL cache of :class:`AllocationResult` by canonical demand."""

    ttl_ms: float = float("inf")
    max_entries: int = 128
    hits: int = 0
    misses: int = 0
    stores: int = 0
    expirations: int = 0
    evictions: int = 0
    invalidations: int = 0
    _entries: "OrderedDict[tuple, CachedAllocation]" = field(
        default_factory=OrderedDict, repr=False
    )

    def __post_init__(self) -> None:
        if self.ttl_ms <= 0:
            raise ConfigurationError("cache TTL must be positive")
        if self.max_entries < 1:
            raise ConfigurationError("cache needs room for at least one entry")

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(
        demand: np.ndarray,
        num_gpus: int,
        fingerprint: str,
        method: str,
        relax: bool,
    ) -> tuple:
        """Canonical cache key. Exactness matters: everything the solve
        depends on is either in the key or deterministic."""
        return (
            num_gpus,
            fingerprint,
            method,
            relax,
            canonical_demand(demand).tobytes(),
        )

    def lookup(self, now_ms: float, key: tuple) -> CachedAllocation | None:
        """Exact hit, honouring TTL; refreshes LRU order."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if now_ms - entry.stored_at_ms > self.ttl_ms:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def nearest(
        self,
        now_ms: float,
        num_gpus: int,
        fingerprint: str,
        demand: np.ndarray,
    ) -> np.ndarray | None:
        """Allocation of the live entry with the L1-closest demand.

        Only entries solved for the same budget and profiles qualify —
        an allocation for a different fleet cannot seed this one.
        Returns a copy safe for the caller to mutate.
        """
        demand = canonical_demand(demand)
        best: CachedAllocation | None = None
        best_dist = float("inf")
        for entry in self._entries.values():
            if entry.num_gpus != num_gpus or entry.fingerprint != fingerprint:
                continue
            if now_ms - entry.stored_at_ms > self.ttl_ms:
                continue
            if entry.demand.shape != demand.shape:
                continue
            dist = float(np.abs(entry.demand - demand).sum())
            if dist < best_dist:
                best, best_dist = entry, dist
        if best is None:
            return None
        return best.result.allocation.copy()

    def nearest_within(
        self,
        now_ms: float,
        num_gpus: int,
        fingerprint: str,
        demand: np.ndarray,
        tolerance: float,
        method: str | None = None,
        record: bool = True,
    ) -> CachedAllocation | None:
        """Approximate hit: the live entry whose demand is within a
        *relative* L1 distance of the query.

        Distance is ``‖d_entry − d‖₁ / max(‖d‖₁, 1)`` — scale-free, so
        one tolerance works across traffic levels. Same-budget /
        same-fingerprint filtering as :meth:`nearest` (optionally also
        same solver ``method``), and the closest qualifying entry wins.
        The returned entry's allocation was optimal for a *nearby*
        demand, not this one: callers must re-check feasibility and
        re-evaluate the objective against the live problem before use
        (the anytime scheduler does both). Counts as a hit/miss and
        refreshes LRU order like :meth:`lookup`; pass ``record=False``
        for a side-effect-free probe (the pre-solve path asks "is this
        forecast already covered?" without skewing hit-rate accounting).
        """
        query = canonical_demand(demand)
        denom = max(float(np.abs(query).sum()), 1.0)
        best: CachedAllocation | None = None
        best_dist = float("inf")
        for entry in self._entries.values():
            if entry.num_gpus != num_gpus or entry.fingerprint != fingerprint:
                continue
            if method is not None and entry.key[2] != method:
                continue
            if now_ms - entry.stored_at_ms > self.ttl_ms:
                continue
            if entry.demand.shape != query.shape:
                continue
            dist = float(np.abs(entry.demand - query).sum()) / denom
            if dist <= tolerance and dist < best_dist:
                best, best_dist = entry, dist
        if best is None:
            if record:
                self.misses += 1
            return None
        if record:
            self._entries.move_to_end(best.key)
            self.hits += 1
        return best

    def contains(self, now_ms: float, key: tuple) -> bool:
        """Non-mutating membership probe honouring TTL.

        Unlike :meth:`lookup` this touches no counters and no LRU
        order — the pre-solve path uses it to decide whether a forecast
        is already covered without polluting hit-rate accounting.
        """
        entry = self._entries.get(key)
        return entry is not None and now_ms - entry.stored_at_ms <= self.ttl_ms

    def store(
        self,
        now_ms: float,
        key: tuple,
        num_gpus: int,
        fingerprint: str,
        demand: np.ndarray,
        result: "AllocationResult",  # noqa: F821
    ) -> None:
        """Memoize one solve (a private copy of the result is kept)."""
        frozen = replace(
            result,
            allocation=result.allocation.copy(),
            stats=dict(result.stats),
        )
        self._entries[key] = CachedAllocation(
            key=key,
            num_gpus=num_gpus,
            fingerprint=fingerprint,
            demand=canonical_demand(demand),
            result=frozen,
            stored_at_ms=now_ms,
        )
        self._entries.move_to_end(key)
        self.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry (fleet/profile change hook). Returns count."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += 1
        return dropped

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
