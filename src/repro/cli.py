"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``trace``     generate a Twitter-like trace and write it to ``.npz``
``profile``   run the offline stage (compile + profile) for a model and
              write the polymorph-set JSON document
``simulate``  serve a trace with one scheme and print/save the summary
``compare``   run several schemes on one trace and print the paper-style
              comparison table and ASCII latency CDF
``solve``     solve one Eqs. 1–7 allocation instance from JSON input
``experiment`` run an ExperimentSpec from a JSON file (optionally a
              sweep over listed fields, optionally in parallel)

Every command is a thin shell over the public library API, so anything
the CLI does is equally scriptable from Python.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.baselines.schemes import SCHEME_NAMES, build_scheme
from repro.core.allocation import AllocationProblem, solve_allocation
from repro.experiments.plots import cdf_plot
from repro.experiments.report import comparison_table, format_table
from repro.io.profiles import save_registry
from repro.io.results import result_to_dict, save_result_summary
from repro.io.traces import load_trace, save_trace
from repro.runtimes.models import MODEL_ZOO
from repro.runtimes.registry import build_polymorph_set
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import TwitterTraceConfig, generate_twitter_trace


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rate", type=float, default=1_000.0,
                        help="mean arrival rate (req/s)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="trace duration (seconds)")
    parser.add_argument("--pattern", choices=("stable", "bursty"),
                        default="stable")
    parser.add_argument("--seed", type=int, default=0)


def _add_generative_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--generative", action="store_true",
                        help="prefill+decode workload: sample per-request "
                        "decode lengths and serve through the decode event "
                        "loop with continuous batching")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="decode batch size cap per instance "
                        "(--generative only)")
    parser.add_argument("--chunk-steps", type=int, default=1,
                        help="decode steps advanced per DECODE_STEP event "
                        "(--generative only)")
    parser.add_argument("--gang", action="store_true",
                        help="gang-schedule decode batches instead of "
                        "continuous batching (--generative only)")
    parser.add_argument("--decode-median", type=int, default=64,
                        help="median sampled decode length "
                        "(--generative only)")
    parser.add_argument("--decode-p98", type=int, default=256,
                        help="p98 sampled decode length (--generative only)")
    parser.add_argument("--disagg", action="store_true",
                        help="disaggregated prefill/decode pools: prompts "
                        "run on a prefill pool, the KV cache transfers to "
                        "a decode pool, roles rebalance adaptively "
                        "(--generative only)")
    parser.add_argument("--transfer-ms-per-token", type=float, default=0.02,
                        help="KV transfer cost per prompt token "
                        "(--disagg only)")
    parser.add_argument("--prefill-fraction", type=float, default=0.5,
                        help="initial prefill-pool share of instances "
                        "(--disagg only)")


def _make_trace(args: argparse.Namespace):
    if getattr(args, "generative", False):
        from repro.workload.generative import (
            GenerativeTraceConfig,
            generate_generative_trace,
        )
        from repro.workload.lengths import LogNormalLengths

        return generate_generative_trace(
            GenerativeTraceConfig(
                rate_per_s=args.rate,
                duration_ms=seconds(args.duration),
                pattern=args.pattern,
                seed=args.seed,
                decode_lengths=LogNormalLengths.from_quantiles(
                    median=args.decode_median,
                    p98=args.decode_p98,
                    max_length=max(2 * args.decode_p98, args.decode_p98 + 1),
                ),
            )
        )
    return generate_twitter_trace(
        TwitterTraceConfig(
            rate_per_s=args.rate,
            duration_ms=seconds(args.duration),
            pattern=args.pattern,
            seed=args.seed,
        )
    )


def _generative_config_from_args(args: argparse.Namespace):
    """``SimulationConfig.generative`` value from CLI flags (or None)."""
    if not getattr(args, "generative", False):
        if getattr(args, "disagg", False):
            raise SystemExit("--disagg requires --generative (the pools "
                             "serve a prefill+decode workload)")
        return None
    from repro.sim.generative import GenerativeConfig

    disagg = None
    if getattr(args, "disagg", False):
        from repro.sim.disagg import DisaggConfig

        disagg = DisaggConfig(
            transfer_ms_per_token=args.transfer_ms_per_token,
            prefill_fraction=args.prefill_fraction,
        )
    return GenerativeConfig(
        max_batch=args.max_batch,
        continuous_batching=not args.gang,
        chunk_steps=args.chunk_steps,
        disagg=disagg,
    )


def cmd_trace(args: argparse.Namespace) -> int:
    """Dual-mode: with ``--output``, generate a workload trace (the
    legacy behaviour); without it, run a *traced* simulation and print
    the observability summary (optionally exporting spans/timeline/
    Prometheus artifacts and validating them against the schemas)."""
    if args.output:
        trace = _make_trace(args)
        path = save_trace(trace, args.output)
        print(f"wrote {trace} to {path}")
        return 0
    if args.workers > 1:
        if args.generative:
            raise SystemExit("--generative needs the serial path: decode "
                             "batches do not partition spatially "
                             "(drop --workers)")
        return _cmd_trace_spatial(args)
    return _cmd_trace_run(args)


def _cmd_trace_spatial(args: argparse.Namespace) -> int:
    """``trace --workers N``: serve the trace as N request-partition
    space shards and print the merged summary.

    The spatial data plane has no span pipeline (each shard is an
    independent simulation; probe-faithful tracing stays a serial
    feature), so the observability exports and chaos faults are
    rejected rather than silently dropped.
    """
    from repro.experiments.runner import ExperimentSpec
    from repro.sim.sharded import run_spatial

    if args.chaos:
        raise SystemExit("--chaos needs the serial path: faults do not "
                         "partition spatially (drop --workers)")
    for flag in ("spans_out", "timeline_out", "prom_out"):
        if getattr(args, flag):
            raise SystemExit(f"--{flag.replace('_', '-')} needs the serial "
                             "path: spatial shards collect no spans "
                             "(drop --workers)")
    trace = load_trace(args.trace) if args.trace else None
    spec = ExperimentSpec(
        name="cli-trace",
        model=args.model,
        num_gpus=args.gpus,
        rate_per_s=args.rate,
        duration_s=args.duration,
        pattern=args.pattern,
        seed=args.seed,
        schemes=(args.scheme,),
        warmup_s=args.warmup,
        trace_override=trace,
        space_partition="request",
        data_plane=args.data_plane,
    )
    merged = run_spatial(spec, args.scheme, args.workers)
    stats = merged.stats
    print(f"{args.scheme}: {args.workers} request-partition space shards "
          f"({args.data_plane} data plane)")
    print(f"  completed {stats.count}  mean {stats.mean_ms:.2f} ms  "
          f"p99 {stats.p99_ms:.2f} ms  "
          f"slo_violation {stats.slo_violation_rate:.4f}")
    print(f"  events {merged.events_processed}  "
          f"span {merged.end_ms / 1000.0:.1f} s  "
          f"gpus {merged.time_weighted_gpus:.2f}")
    walls = ", ".join(f"{w:.3f}" for w in merged.shard_walls)
    print(f"  shard walls (s): {walls}")
    for label, source in (("dispatch", merged.dispatch_stats),
                          ("control", merged.control_stats)):
        if source:
            body = "  ".join(f"{k}={v:g}" for k, v in sorted(source.items()))
            print(f"  {label}: {body}")
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    from repro.obs import (
        format_summary,
        load_schema,
        prometheus_snapshot,
        summarize_spans,
        validate_jsonl,
        validate_prometheus_text,
        write_spans_jsonl,
        write_timeline_jsonl,
    )
    from repro.obs.spans import ObservabilityConfig
    from repro.sim.faults import FaultPlan

    trace = _trace_from_args(args)
    hint = trace.slice_time(0, min(seconds(5), trace.duration_ms / 4))
    scheme = build_scheme(args.scheme, args.model, args.gpus,
                          trace_hint=hint if len(hint) else None,
                          runtime_scheduler_config=_runtime_cfg_from_args(args))
    failures = None
    if args.chaos:
        failures = FaultPlan.chaos(trace.duration_ms, seed=args.seed)
    result = run_simulation(scheme, trace, SimulationConfig(
        warmup_ms=seconds(args.warmup),
        failures=failures,
        observability=ObservabilityConfig(sample_rate=args.sample_rate),
        data_plane=args.data_plane,
        generative=_generative_config_from_args(args),
    ))
    if args.generative:
        cs = result.control_stats
        print(f"generative: decode_steps {cs['decode_steps']}  "
              f"step_events {cs['step_events']}  "
              f"batch_joins {cs['batch_joins']}")
        ds = result.dispatch_stats
        if "ttft_mean_ms" in ds:
            print(f"  ttft mean {ds['ttft_mean_ms']:.2f} ms  "
                  f"p50 {ds['ttft_p50_ms']:.2f} ms  "
                  f"p98 {ds['ttft_p98_ms']:.2f} ms")
        if "tpot_mean_ms" in ds:
            print(f"  tpot mean {ds['tpot_mean_ms']:.2f} ms  "
                  f"p50 {ds['tpot_p50_ms']:.2f} ms  "
                  f"p98 {ds['tpot_p98_ms']:.2f} ms")
        if args.disagg:
            print(f"  disagg: kv_transfers {cs['kv_transfers']}  "
                  f"pool_flips {cs['pool_flips']}  "
                  f"pools {ds['prefill_pool_size']:.0f}p/"
                  f"{ds['decode_pool_size']:.0f}d")

    summary = summarize_spans(result.spans)
    print(format_summary(summary, scheme_name=result.scheme_name))
    if result.timeline is not None and len(result.timeline):
        print()
        print("control-plane timeline:")
        for key, count in sorted(result.timeline.counts().items()):
            print(f"  {key}: {count}")

    if args.spans_out:
        n = write_spans_jsonl(args.spans_out, result.spans)
        print(f"wrote {n} spans to {args.spans_out}", file=sys.stderr)
        if args.validate:
            validate_jsonl(args.spans_out, load_schema("trace_span"))
            print(f"validated {args.spans_out}", file=sys.stderr)
    if args.timeline_out:
        n = write_timeline_jsonl(args.timeline_out, result.timeline)
        print(f"wrote {n} timeline events to {args.timeline_out}",
              file=sys.stderr)
        if args.validate:
            validate_jsonl(args.timeline_out, load_schema("timeline_event"))
            print(f"validated {args.timeline_out}", file=sys.stderr)
    if args.prom_out:
        result.metrics._sync_sketch()
        text = prometheus_snapshot(
            counters={
                k: float(v) for k, v in result.control_stats.items()
            },
            gauges={
                "time_weighted_gpus": result.time_weighted_gpus,
                "events_processed": float(result.events_processed),
            },
            sketch=result.metrics.sketch,
            labels={"scheme": result.scheme_name},
        )
        import pathlib

        pathlib.Path(args.prom_out).write_text(text)
        print(f"wrote prometheus snapshot to {args.prom_out}",
              file=sys.stderr)
        if args.validate:
            validate_prometheus_text(text)
            print(f"validated {args.prom_out}", file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    registry = build_polymorph_set(MODEL_ZOO[args.model])
    path = save_registry(registry, args.output)
    print(f"profiled {len(registry)} runtimes for {args.model} -> {path}")
    for p in registry:
        print(f"  max_length {p.max_length:4d}: {p.service_ms:6.2f} ms, "
              f"M={p.capacity}")
    return 0


def _trace_from_args(args: argparse.Namespace):
    if getattr(args, "trace", None):
        return load_trace(args.trace)
    return _make_trace(args)


def _runtime_cfg_from_args(args: argparse.Namespace):
    """Anytime-control-plane config from CLI flags, or None for defaults.

    Returning None (the default) keeps the scheme factory on its own
    defaults, so flows that never pass --solver-ladder are untouched.
    """
    if not getattr(args, "solver_ladder", False):
        return None
    from repro.core.runtime_scheduler import RuntimeSchedulerConfig

    return RuntimeSchedulerConfig(
        solver_ladder=True,
        solve_deadline_ms=args.solve_deadline_ms,
        forecast=args.forecast,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    trace = _trace_from_args(args)
    hint = trace.slice_time(0, min(seconds(5), trace.duration_ms / 4))
    scheme = build_scheme(args.scheme, args.model, args.gpus,
                          trace_hint=hint if len(hint) else None)
    result = run_simulation(scheme, trace, SimulationConfig(
        warmup_ms=seconds(args.warmup)))
    summary = result_to_dict(result)
    print(json.dumps(summary, indent=2))
    if args.output:
        save_result_summary(result, args.output)
        print(f"saved summary to {args.output}", file=sys.stderr)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    trace = _trace_from_args(args)
    hint = trace.slice_time(0, min(seconds(5), trace.duration_ms / 4))
    results = {}
    for name in args.schemes:
        scheme = build_scheme(name, args.model, args.gpus,
                              trace_hint=hint if len(hint) else None)
        results[name] = run_simulation(
            scheme, trace, SimulationConfig(warmup_ms=seconds(args.warmup))
        )
    rows = comparison_table(results, reference=args.reference)
    print(format_table(
        rows, title=f"{args.model} @ {trace.mean_rate_per_s:.0f} req/s, "
        f"{args.gpus} GPUs"))
    if args.cdf:
        print()
        print(cdf_plot(
            {name: res.latencies() for name, res in results.items()},
            title="latency CDF",
            x_max=float(np.percentile(
                results[args.reference].latencies(), 99.5)) * 3,
        ))
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    payload = json.loads(sys.stdin.read() if args.input == "-"
                         else open(args.input).read())
    problem = AllocationProblem(
        num_gpus=int(payload["num_gpus"]),
        demand=np.asarray(payload["demand"], dtype=float),
        capacity=np.asarray(payload["capacity"]),
        service_ms=np.asarray(payload["service_ms"], dtype=float),
        overhead_ms=float(payload.get("overhead_ms", 0.8)),
    )
    result = solve_allocation(problem, method=args.method,
                              relax=args.relax)
    print(json.dumps({
        "allocation": result.allocation.tolist(),
        "objective": result.objective,
        "solver": result.solver,
        "solve_time_s": result.solve_time_s,
        "relaxed": result.relaxed,
    }, indent=2))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.runner import ExperimentSpec
    from repro.experiments.sweep import expand_grid, run_sweep

    payload = json.loads(sys.stdin.read() if args.spec == "-"
                         else open(args.spec).read())
    axes = payload.pop("sweep", {})
    if "schemes" in payload:
        payload["schemes"] = tuple(payload["schemes"])
    # CLI flags override the JSON spec so scenario sweeps can flip the
    # anytime path without editing spec files.
    if args.solver_ladder:
        payload["solver_ladder"] = True
        payload["solve_deadline_ms"] = args.solve_deadline_ms
        if args.forecast:
            payload["forecast"] = True
    spec = ExperimentSpec(**payload)
    specs = expand_grid(spec, **axes)
    results = run_sweep(specs, workers=args.workers)
    print(json.dumps(results, indent=2))
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(json.dumps(results, indent=2))
        print(f"saved results to {args.output}", file=sys.stderr)
    return 0


def _add_anytime_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--solver-ladder", action="store_true",
                   help="run the control plane through the anytime solver "
                   "ladder (greedy -> local -> dp -> milp) under a "
                   "wall-clock deadline")
    p.add_argument("--solve-deadline-ms", type=float, default=50.0,
                   help="per-period wall-clock solve deadline for "
                   "--solver-ladder (default 50)")
    p.add_argument("--forecast", action="store_true",
                   help="with --solver-ladder: forecast next-period demand "
                   "and pre-solve it into the allocation cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Arlo reproduction: polymorph serving experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser(
        "trace",
        help="with --output: generate a Twitter-like trace; without: "
        "run a traced simulation and summarise its spans/timeline",
    )
    _add_trace_args(p_trace)
    _add_generative_args(p_trace)
    p_trace.add_argument("--output",
                        help="write the generated trace .npz here "
                        "(omit to run the observability summarizer)")
    p_trace.add_argument("--trace", help="trace .npz (otherwise synthesise)")
    p_trace.add_argument("--model", choices=sorted(MODEL_ZOO),
                         default="bert-base")
    p_trace.add_argument("--scheme", choices=SCHEME_NAMES, default="arlo")
    p_trace.add_argument("--gpus", type=int, default=10)
    p_trace.add_argument("--warmup", type=float, default=0.0,
                         help="seconds excluded from statistics")
    p_trace.add_argument("--chaos", action="store_true",
                         help="inject the standard chaos fault plan")
    p_trace.add_argument("--sample-rate", type=float, default=1.0,
                         help="fraction of requests traced (0..1)")
    p_trace.add_argument("--spans-out", help="write span JSONL here")
    p_trace.add_argument("--timeline-out",
                         help="write timeline-event JSONL here")
    p_trace.add_argument("--prom-out",
                         help="write a Prometheus text snapshot here")
    p_trace.add_argument("--validate", action="store_true",
                         help="validate exported artifacts against the "
                         "checked-in schemas")
    p_trace.add_argument("--workers", type=int, default=1,
                         help="run the simulation as this many "
                         "request-partition space shards and print the "
                         "merged summary (incompatible with --chaos and "
                         "the span/timeline/prometheus exports)")
    p_trace.add_argument("--data-plane", choices=("pooled", "columnar"),
                         default="pooled",
                         help="completion-event representation: pooled "
                         "records (default) or columnar slots")
    _add_anytime_args(p_trace)
    p_trace.set_defaults(fn=cmd_trace)

    p_profile = sub.add_parser("profile", help="offline compile+profile")
    p_profile.add_argument("--model", choices=sorted(MODEL_ZOO),
                           default="bert-base")
    p_profile.add_argument("--output", required=True)
    p_profile.set_defaults(fn=cmd_profile)

    p_sim = sub.add_parser("simulate", help="serve a trace with one scheme")
    _add_trace_args(p_sim)
    p_sim.add_argument("--trace", help="trace .npz (otherwise synthesise)")
    p_sim.add_argument("--model", choices=sorted(MODEL_ZOO),
                       default="bert-base")
    p_sim.add_argument("--scheme", choices=SCHEME_NAMES, default="arlo")
    p_sim.add_argument("--gpus", type=int, default=10)
    p_sim.add_argument("--warmup", type=float, default=0.0,
                       help="seconds excluded from statistics")
    p_sim.add_argument("--output", help="write JSON summary here")
    p_sim.set_defaults(fn=cmd_simulate)

    p_cmp = sub.add_parser("compare", help="run several schemes on one trace")
    _add_trace_args(p_cmp)
    p_cmp.add_argument("--trace")
    p_cmp.add_argument("--model", choices=sorted(MODEL_ZOO),
                       default="bert-base")
    p_cmp.add_argument("--schemes", nargs="+", default=list(SCHEME_NAMES[:4]),
                       choices=SCHEME_NAMES)
    p_cmp.add_argument("--gpus", type=int, default=10)
    p_cmp.add_argument("--warmup", type=float, default=0.0)
    p_cmp.add_argument("--reference", default="arlo")
    p_cmp.add_argument("--cdf", action="store_true",
                       help="render an ASCII latency CDF")
    p_cmp.set_defaults(fn=cmd_compare)

    p_exp = sub.add_parser(
        "experiment",
        help="run an ExperimentSpec JSON (fields of "
        "repro.experiments.runner.ExperimentSpec, plus an optional "
        "'sweep' object mapping field -> list of values)",
    )
    p_exp.add_argument("--spec", default="-",
                       help="JSON spec file ('-' = stdin)")
    p_exp.add_argument("--workers", type=int, default=1)
    p_exp.add_argument("--output", help="also write results JSON here")
    _add_anytime_args(p_exp)
    p_exp.set_defaults(fn=cmd_experiment)

    p_solve = sub.add_parser("solve", help="solve one Eqs. 1-7 instance")
    p_solve.add_argument("--input", default="-",
                         help="JSON file with the problem ('-' = stdin)")
    p_solve.add_argument("--method", default="auto",
                         choices=("auto", "dp", "local", "brute", "milp"))
    p_solve.add_argument("--relax", action="store_true")
    p_solve.set_defaults(fn=cmd_solve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
