"""Per-bin demand estimation (the ``Q_i`` fed into Eqs. 1–7).

The Runtime Scheduler assumes the request length distribution is
observable "over a coarse time scale (e.g. every 10 minutes)" (§1).
The estimator keeps a trailing window of (arrival time, bin) pairs and
reports, per bin, the *average number of arrivals within one SLO
window* — exactly the unit ``Q_i`` is expressed in (Eq. 3 divides it
by the per-SLO capacity ``M_i``).

An optional EWMA mode blends successive window estimates for workloads
whose distribution drifts faster than the scheduler period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bins import LengthBins
from repro.errors import ConfigurationError
from repro.perf.incremental import IncrementalHistogram


@dataclass
class DemandEstimator:
    """Streaming Q-vector estimator over a trailing time window.

    The windowed per-bin counts live in an
    :class:`~repro.perf.incremental.IncrementalHistogram` — O(1)
    amortised per arrival, O(1) reads — with eviction semantics
    identical to the original deque scan.
    """

    bins: LengthBins
    slo_ms: float
    window_ms: float
    #: EWMA factor on successive estimates; 1.0 = pure trailing window.
    ewma_alpha: float = 1.0
    _hist: IncrementalHistogram = field(init=False)
    _smoothed: np.ndarray | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ConfigurationError("SLO must be positive")
        if self.window_ms < self.slo_ms:
            raise ConfigurationError("window must cover at least one SLO period")
        if not 0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        self._hist = IncrementalHistogram(
            num_bins=len(self.bins), window_ms=self.window_ms
        )

    def observe(self, now_ms: float, length: int) -> None:
        """Record one arrival."""
        self._hist.add(now_ms, self.bins.bin_of(length))

    def observe_batch(self, times_ms: np.ndarray, lengths: np.ndarray) -> None:
        """Record many arrivals at once (trace replay)."""
        self._hist.add_batch(times_ms, self.bins.bins_of(lengths))

    @property
    def observed(self) -> int:
        """Arrivals currently inside the window — O(1)."""
        return self._hist.total

    def raw_histogram(self) -> np.ndarray:
        """Current per-bin counts inside the window."""
        return self._hist.snapshot()

    def demand(self, now_ms: float) -> np.ndarray:
        """``Q_i``: expected arrivals per bin within one SLO window."""
        self._hist.evict(now_ms)
        oldest = self._hist.oldest_ms()
        if oldest is not None:
            span = max(now_ms - oldest, self.slo_ms)
        else:
            span = self.window_ms
        estimate = self._hist.counts * (self.slo_ms / span)
        if self.ewma_alpha < 1.0:
            if self._smoothed is None:
                self._smoothed = estimate
            else:
                self._smoothed = (
                    self.ewma_alpha * estimate
                    + (1.0 - self.ewma_alpha) * self._smoothed
                )
            return self._smoothed.copy()
        return estimate

    @staticmethod
    def from_trace_slice(
        bins: LengthBins, lengths: np.ndarray, span_ms: float, slo_ms: float
    ) -> np.ndarray:
        """One-shot Q-vector from a trace slice (offline allocators)."""
        if span_ms <= 0:
            raise ConfigurationError("span must be positive")
        hist = bins.histogram(lengths)
        return hist * (slo_ms / span_ms)
