"""Per-bin demand estimation (the ``Q_i`` fed into Eqs. 1–7).

The Runtime Scheduler assumes the request length distribution is
observable "over a coarse time scale (e.g. every 10 minutes)" (§1).
The estimator keeps a trailing window of (arrival time, bin) pairs and
reports, per bin, the *average number of arrivals within one SLO
window* — exactly the unit ``Q_i`` is expressed in (Eq. 3 divides it
by the per-SLO capacity ``M_i``).

An optional EWMA mode blends successive window estimates for workloads
whose distribution drifts faster than the scheduler period.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.bins import LengthBins
from repro.errors import ConfigurationError


@dataclass
class DemandEstimator:
    """Streaming Q-vector estimator over a trailing time window."""

    bins: LengthBins
    slo_ms: float
    window_ms: float
    #: EWMA factor on successive estimates; 1.0 = pure trailing window.
    ewma_alpha: float = 1.0
    _events: deque = field(init=False)  # (time_ms, bin)
    _counts: np.ndarray = field(init=False)
    _smoothed: np.ndarray | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ConfigurationError("SLO must be positive")
        if self.window_ms < self.slo_ms:
            raise ConfigurationError("window must cover at least one SLO period")
        if not 0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        self._events = deque()
        self._counts = np.zeros(len(self.bins), dtype=np.int64)

    def observe(self, now_ms: float, length: int) -> None:
        """Record one arrival."""
        b = self.bins.bin_of(length)
        self._events.append((now_ms, b))
        self._counts[b] += 1
        self._evict(now_ms)

    def observe_batch(self, times_ms: np.ndarray, lengths: np.ndarray) -> None:
        """Record many arrivals at once (trace replay)."""
        bins = self.bins.bins_of(lengths)
        for t, b in zip(times_ms, bins):
            self._events.append((float(t), int(b)))
        self._counts += np.bincount(bins, minlength=len(self.bins))
        if len(self._events):
            self._evict(self._events[-1][0])

    def _evict(self, now_ms: float) -> None:
        horizon = now_ms - self.window_ms
        while self._events and self._events[0][0] < horizon:
            _, b = self._events.popleft()
            self._counts[b] -= 1

    @property
    def observed(self) -> int:
        """Arrivals currently inside the window."""
        return int(self._counts.sum())

    def raw_histogram(self) -> np.ndarray:
        """Current per-bin counts inside the window."""
        return self._counts.copy()

    def demand(self, now_ms: float) -> np.ndarray:
        """``Q_i``: expected arrivals per bin within one SLO window."""
        self._evict(now_ms)
        if self._events:
            span = max(now_ms - self._events[0][0], self.slo_ms)
        else:
            span = self.window_ms
        estimate = self._counts * (self.slo_ms / span)
        if self.ewma_alpha < 1.0:
            if self._smoothed is None:
                self._smoothed = estimate
            else:
                self._smoothed = (
                    self.ewma_alpha * estimate
                    + (1.0 - self.ewma_alpha) * self._smoothed
                )
            return self._smoothed.copy()
        return estimate

    @staticmethod
    def from_trace_slice(
        bins: LengthBins, lengths: np.ndarray, span_ms: float, slo_ms: float
    ) -> np.ndarray:
        """One-shot Q-vector from a trace slice (offline allocators)."""
        if span_ms <= 0:
            raise ConfigurationError("span must be positive")
        hist = bins.histogram(lengths)
        return hist * (slo_ms / span_ms)
