"""Coupled prefill/decode pool allocation — Eqs. 1–7 over two pools.

The disaggregated data plane (``repro.sim.disagg``) runs two instance
pools on one GPU budget: a *prefill* pool placed by Algorithm 1 over
the usual staircase runtimes, and a *decode* pool running the
continuous-batching step loop. Arrow (arxiv 2505.11916) frames the
sizing question: how many GPUs go to each pool this period, given the
observed prompt-length demand (TTFT pressure) and the decode occupancy
(token-throughput pressure)?

This module solves that outer split as a one-dimensional scan coupled
to the existing Eqs. 1–7 inner solve:

    minimize over g_d in [min_decode, G - min_prefill]:

        f(g_d) = P(G - g_d) + w · occ / (g_d · s)

where ``P(g_p)`` is the Eq. 1 objective of the best prefill allocation
on ``g_p`` GPUs (solved by the deterministic greedy rung — the scan
must stay wall-clock-free so two runs of the same period pick the same
split), ``occ`` is the decode-pool occupancy signal (sequences waiting,
decoding, or in KV transit), ``s`` the decode slots per GPU
(``max_batch``), and ``w`` a latency-equivalent weight converting
slot pressure into the objective's ms·requests units.

**Monotone rebalancing.** ``f`` has decreasing differences in
``(g_d, occ)``: for ``g_d' > g_d`` the difference
``f(g_d') − f(g_d)`` shrinks as ``occ`` grows (the prefill term is
constant in ``occ`` and ``w·occ·(1/g_d' − 1/g_d)`` is decreasing). By
Topkis' monotone selection theorem the *smallest* argmin is
non-decreasing in ``occ`` — more decode pressure never yields a
smaller decode pool. The scan takes the smallest argmin (strict
improvement while scanning ``g_d`` upward), and a property test pins
the monotonicity.

The chosen split's prefill allocation can then be *refined* by the
anytime solver ladder (``RuntimeScheduler.decide_pool_split``) without
touching the split itself, so refinement never breaks determinism of
the outer loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.allocation import (
    AllocationProblem,
    solve_greedy,
)
from repro.errors import ConfigurationError, InfeasibleError


@dataclass(frozen=True)
class PoolSplitConfig:
    """Knobs of the coupled prefill/decode split.

    ``decode_weight_ms`` converts decode occupancy-per-slot into the
    Eq. 1 objective's ms·requests units; larger values shift GPUs
    toward the decode pool sooner. ``min_prefill``/``min_decode`` keep
    both pools alive (the disagg loop needs at least one instance on
    each side; the prefill side additionally needs top-runtime coverage
    for Eq. 7, which the inner problem enforces).
    """

    min_prefill: int = 1
    min_decode: int = 1
    decode_weight_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.min_prefill < 1 or self.min_decode < 1:
            raise ConfigurationError(
                "both pools need at least one GPU (min_prefill/min_decode)"
            )
        if self.decode_weight_ms < 0:
            raise ConfigurationError("decode_weight_ms cannot be negative")


@dataclass(frozen=True)
class PoolSplit:
    """A solved split: how the GPU budget divides across the pools.

    ``prefill_allocation`` is the Eq. 1–7 allocation of the prefill
    pool's ``prefill_gpus`` budget (feasible for the sub-problem with
    ``num_gpus = prefill_gpus``; ``relaxed`` records whether the Eq. 3
    bounds had to be trimmed). ``decode_pressure_ms`` is the decode
    term of the chosen candidate's score.
    """

    total_gpus: int
    prefill_gpus: int
    decode_gpus: int
    prefill_allocation: np.ndarray
    prefill_objective: float
    decode_pressure_ms: float
    relaxed: bool
    solver: str
    candidates: int

    @property
    def score(self) -> float:
        return self.prefill_objective + self.decode_pressure_ms


def solve_pool_split(
    problem: AllocationProblem,
    *,
    decode_occupancy: float,
    decode_slots_per_gpu: float,
    config: PoolSplitConfig | None = None,
) -> PoolSplit:
    """Solve the coupled split for one decision period.

    ``problem`` carries the prefill-side demand over the *total* GPU
    budget (``problem.num_gpus``); ``decode_occupancy`` is the live
    decode-pool pressure signal (sequences waiting + decoding + in KV
    transit); ``decode_slots_per_gpu`` is the decode batch capacity
    per instance (``max_batch``).

    Deterministic by construction: every inner solve is the greedy
    rung (no wall-clock budget), the scan order is fixed, and ties
    keep the smallest decode pool. Raises
    :class:`~repro.errors.InfeasibleError` when no candidate split
    admits even a relaxed prefill allocation.
    """
    config = config or PoolSplitConfig()
    total = problem.num_gpus
    if total < config.min_prefill + config.min_decode:
        raise InfeasibleError(
            f"{total} GPUs cannot satisfy min_prefill="
            f"{config.min_prefill} + min_decode={config.min_decode}"
        )
    if decode_occupancy < 0:
        raise ConfigurationError("decode occupancy cannot be negative")
    if decode_slots_per_gpu <= 0:
        raise ConfigurationError("decode slots per GPU must be positive")

    best: PoolSplit | None = None
    candidates = 0
    for g_d in range(config.min_decode, total - config.min_prefill + 1):
        g_p = total - g_d
        sub = replace(problem, num_gpus=g_p)
        relaxed = False
        try:
            inner = solve_greedy(sub)
        except InfeasibleError:
            try:
                inner = solve_greedy(sub, relax=True)
                relaxed = True
            except InfeasibleError:
                continue  # too few prefill GPUs even relaxed
        candidates += 1
        pressure = (
            config.decode_weight_ms
            * decode_occupancy
            / (g_d * decode_slots_per_gpu)
        )
        candidate = PoolSplit(
            total_gpus=total,
            prefill_gpus=g_p,
            decode_gpus=g_d,
            prefill_allocation=inner.allocation,
            prefill_objective=inner.objective,
            decode_pressure_ms=pressure,
            relaxed=relaxed,
            solver="greedy-scan",
            candidates=0,
        )
        # Strict improvement while scanning g_d upward keeps the
        # *smallest* argmin — the monotone-selection tie-break.
        if best is None or candidate.score < best.score:
            best = candidate
    if best is None:
        raise InfeasibleError(
            f"no feasible prefill allocation at any split of {total} GPUs"
        )
    return replace(best, candidates=candidates)
