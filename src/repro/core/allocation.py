"""The Runtime Scheduler's optimisation problem (paper Eqs. 1–7).

Given ``G`` GPUs, ``I`` runtimes sorted by ``max_length``, per-bin
demand ``Q_i`` (average arrivals within one SLO window whose ideal
runtime is ``i``) and profiled performance (capacity ``M_i``, latency
map ``L_i``), choose the instance counts ``N_i`` minimising

    Σ_i  L_i(B_i) · C_i                                     (Eq. 1)

subject to the demotion-cascade semantics:

    Σ N_i = G                                               (Eq. 2)
    N_i ≥ ⌊Q_i / M_i⌋                                       (Eq. 3)
    R_i = max(R_{i-1} + Q_i − N_i·M_i, 0)                   (Eq. 4)
    C_i = min(R_{i-1} + Q_i, N_i·M_i)   (C_I takes the rest) (Eq. 5)
    B_i = C_i / N_i                                          (Eq. 6)
    N_I ≥ 1                                                  (Eq. 7)

The paper feeds this to GUROBI. We provide five interchangeable
solvers:

``greedy``
    O(I) first-fit: cascade-aware instance counts plus a proportional
    spread of leftover GPUs. The bottom rung of the anytime ladder
    (:mod:`repro.perf.anytime`) — always finishes, never optimal.
``dp``
    Exact dynamic program over (runtime index, GPUs used) states with
    Pareto-label pruning on (cost so far, carried-over demand ``R``).
    Provably optimal: dominance is sound because both the remaining
    cost and the cascade are monotone non-decreasing in ``R``.
``local``
    Greedy seed + steepest-descent pairwise moves; near-optimal and
    fast at 1000-GPU scale (Table 2 timings).
``brute``
    Exhaustive enumeration, used to certify the DP in tests.
``milp``
    Encoding on :mod:`repro.solver` with indicator binaries for the
    Eq. 5 ``min`` and tangent-epigraph costs; a validation path
    demonstrating the GUROBI-replacement substrate.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    InfeasibleError,
    SolverError,
)
from repro.runtimes.profiler import RuntimeProfile
from repro.solver.model import LinExpr, Model
from repro.solver.piecewise import tangent_lines

_EPS = 1e-9


class _BudgetExpired(Exception):
    """Internal control-flow signal: a solver's wall-clock budget ran out."""


@dataclass(frozen=True)
class AllocationProblem:
    """One instance of Eqs. 1–7."""

    num_gpus: int
    demand: np.ndarray  # Q_i, arrivals per SLO window, float
    capacity: np.ndarray  # M_i, int
    service_ms: np.ndarray  # per-request execution time of runtime i
    overhead_ms: float = 0.8

    def __post_init__(self) -> None:
        demand = np.asarray(self.demand, dtype=float)
        capacity = np.asarray(self.capacity, dtype=np.int64)
        service = np.asarray(self.service_ms, dtype=float)
        if not (demand.shape == capacity.shape == service.shape):
            raise ConfigurationError("demand/capacity/service must align")
        if demand.ndim != 1 or demand.size == 0:
            raise ConfigurationError("need at least one runtime")
        if np.any(demand < 0):
            raise ConfigurationError("demand cannot be negative")
        if np.any(capacity < 1):
            raise ConfigurationError("capacities must be >= 1")
        if np.any(service <= 0):
            raise ConfigurationError("service times must be positive")
        if self.num_gpus < 1:
            raise ConfigurationError("need at least one GPU")
        object.__setattr__(self, "demand", demand)
        object.__setattr__(self, "capacity", capacity)
        object.__setattr__(self, "service_ms", service)

    @classmethod
    def from_profiles(
        cls, num_gpus: int, demand: np.ndarray, profiles: list[RuntimeProfile]
    ) -> "AllocationProblem":
        """Build from the offline profiler's output."""
        if len(profiles) != len(demand):
            raise ConfigurationError("one demand entry per profiled runtime")
        return cls(
            num_gpus=num_gpus,
            demand=np.asarray(demand, dtype=float),
            capacity=np.array([p.capacity for p in profiles]),
            service_ms=np.array([p.service_ms for p in profiles]),
            overhead_ms=profiles[0].overhead_ms,
        )

    @property
    def num_runtimes(self) -> int:
        return int(self.demand.size)

    # -- objective ------------------------------------------------------------
    def mean_latency(self, index: int, batch: float) -> float:
        """``L_i(B)`` — see :meth:`RuntimeProfile.latency_for_batch`."""
        b = max(batch, 1.0)
        return self.overhead_ms + self.service_ms[index] * (b + 1.0) / 2.0

    def serve_cost(self, index: int, served: float, n_instances: int) -> float:
        """``L_i(C/N)·C`` for one runtime; 0 when nothing is served."""
        if served <= _EPS:
            return 0.0
        if n_instances <= 0:
            return float("inf")
        return self.mean_latency(index, served / n_instances) * served

    def evaluate(self, allocation: np.ndarray) -> float:
        """Objective value of an allocation under the Eq. 4–6 cascade.

        Returns ``inf`` for allocations that strand demand on runtimes
        with zero instances (only possible at the last runtime).
        """
        allocation = np.asarray(allocation, dtype=np.int64)
        if allocation.shape != self.demand.shape:
            raise ConfigurationError("allocation arity mismatch")
        if np.any(allocation < 0):
            raise ConfigurationError("allocation cannot be negative")
        last = self.num_runtimes - 1
        carry = 0.0  # R_{i-1}
        total = 0.0
        for i in range(self.num_runtimes):
            arrive = carry + self.demand[i]
            cap = float(allocation[i]) * float(self.capacity[i])
            if i < last:
                served = min(arrive, cap)
                carry = max(arrive - cap, 0.0)
            else:
                served = arrive  # Eq. 5: the last runtime takes everything
                carry = 0.0
            cost = self.serve_cost(i, served, int(allocation[i]))
            if cost == float("inf"):
                return float("inf")
            total += cost
        return total

    # -- constraints -----------------------------------------------------------
    def lower_bounds(self, relax: bool = False) -> np.ndarray:
        """Eq. 3 ``⌊Q_i/M_i⌋`` bounds plus Eq. 7, optionally relaxed to fit.

        When the bounds alone exceed ``G`` the strict problem is
        infeasible; with ``relax=True`` the bounds are trimmed from the
        shortest runtimes upward (their overflow can always cascade to
        longer runtimes), preserving Eq. 7.
        """
        lb = np.floor(self.demand / self.capacity).astype(np.int64)
        lb[-1] = max(lb[-1], 1)  # Eq. 7
        excess = int(lb.sum()) - self.num_gpus
        if excess <= 0:
            return lb
        if not relax:
            raise InfeasibleError(
                f"Eq. 3 lower bounds need {lb.sum()} GPUs, only "
                f"{self.num_gpus} available"
            )
        for i in range(self.num_runtimes - 1):
            take = min(excess, int(lb[i]))
            lb[i] -= take
            excess -= take
            if excess == 0:
                break
        if excess > 0:
            take = min(excess, int(lb[-1]) - 1)
            lb[-1] -= take
            excess -= take
        if excess > 0:
            raise InfeasibleError(
                f"even one instance per mandatory runtime exceeds "
                f"{self.num_gpus} GPUs"
            )
        return lb

    def is_feasible(self, allocation: np.ndarray, relaxed: bool = False) -> bool:
        """Check Eqs. 2, 3 and 7 for a candidate allocation."""
        allocation = np.asarray(allocation, dtype=np.int64)
        if allocation.shape != self.demand.shape or np.any(allocation < 0):
            return False
        if int(allocation.sum()) != self.num_gpus:
            return False
        if allocation[-1] < 1:
            return False
        lb = self.lower_bounds(relax=relaxed)
        return bool(np.all(allocation >= lb))


@dataclass
class AllocationResult:
    """Solved allocation with provenance."""

    allocation: np.ndarray
    objective: float
    solver: str
    solve_time_s: float
    relaxed: bool = False
    stats: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Exact dynamic program
# ---------------------------------------------------------------------------

def _warm_allocation(
    problem: AllocationProblem, warm_start, relax: bool
) -> np.ndarray | None:
    """Validate a warm-start allocation; None when unusable.

    Feasibility is *checked*, never assumed — the previous period's
    allocation may violate this period's Eq. 3 bounds, and an
    infeasible incumbent would make bound-based pruning unsound.
    """
    if warm_start is None:
        return None
    warm = np.asarray(warm_start, dtype=np.int64)
    if warm.shape != problem.demand.shape:
        return None
    if not problem.is_feasible(warm, relaxed=relax):
        return None
    return warm


def _dp_labels(
    problem: AllocationProblem,
    lb: np.ndarray,
    upper_bound: float = float("inf"),
    expires_at: float | None = None,
):
    """Pareto-label DP over (runtime, gpus-used) with (cost, carry) labels.

    ``upper_bound`` is an incumbent cost from a known-feasible
    allocation (warm start): partial paths already costlier can never
    improve on it (step costs are non-negative) and are pruned. The
    returned optimum is unaffected — every path whose final cost is
    ≤ the bound survives intact.

    ``expires_at`` is an absolute ``time.perf_counter()`` deadline; the
    clock is polled every 128 label expansions (µs-granular at 1000-GPU
    scale) and :class:`_BudgetExpired` raised on expiry.
    """
    G, I = problem.num_gpus, problem.num_runtimes
    ticks = 0
    # Suffix lower-bound sums: GPUs that *must* remain for runtimes > i.
    suffix = np.concatenate([np.cumsum(lb[::-1])[::-1][1:], [0]])
    # labels[g] = list of (cost, carry, alloc_tuple) Pareto-optimal prefixes.
    labels: dict[int, list[tuple[float, float, tuple[int, ...]]]] = {
        0: [(0.0, 0.0, ())]
    }
    for i in range(I):
        is_last = i == I - 1
        new_labels: dict[int, list[tuple[float, float, tuple[int, ...]]]] = {}
        for used, frontier in labels.items():
            max_n = G - used - int(suffix[i])
            if max_n < lb[i]:
                continue
            for cost, carry, alloc in frontier:
                arrive = carry + problem.demand[i]
                for n in range(int(lb[i]), max_n + 1):
                    ticks += 1
                    if (
                        expires_at is not None
                        and not ticks & 127
                        and time.perf_counter() >= expires_at
                    ):
                        raise _BudgetExpired
                    cap = n * float(problem.capacity[i])
                    if is_last:
                        if used + n != G:
                            continue
                        served, new_carry = arrive, 0.0
                    else:
                        served = min(arrive, cap)
                        new_carry = max(arrive - cap, 0.0)
                    step_cost = problem.serve_cost(i, served, n)
                    if step_cost == float("inf"):
                        continue
                    total = cost + step_cost
                    if total > upper_bound + _EPS:
                        continue  # cannot beat the warm-start incumbent
                    entry = (total, new_carry, alloc + (n,))
                    new_labels.setdefault(used + n, []).append(entry)
        # Pareto-prune each bucket on (cost, carry). The sorts are the
        # other place a stage spends real time (O(E log E) over every
        # surviving label), so the deadline is polled per bucket too.
        labels = {}
        for used, entries in new_labels.items():
            if expires_at is not None and time.perf_counter() >= expires_at:
                raise _BudgetExpired
            entries.sort(key=lambda e: (e[0], e[1]))
            pruned: list[tuple[float, float, tuple[int, ...]]] = []
            best_carry = float("inf")
            for e in entries:
                if e[1] < best_carry - _EPS:
                    pruned.append(e)
                    best_carry = e[1]
            labels[used] = pruned
    return labels


def solve_dp(
    problem: AllocationProblem,
    relax: bool = False,
    warm_start: np.ndarray | None = None,
    budget_s: float | None = None,
) -> AllocationResult:
    """Exact solver. Optimal because, for fixed GPUs-used, a prefix with
    both lower cost and lower carried demand can never be beaten by the
    dominated one downstream (cost-to-go is non-decreasing in carry).

    A feasible ``warm_start`` allocation supplies an incumbent upper
    bound that prunes dominated partial paths early; the returned
    *objective* is identical to the cold solve's (only strictly-worse
    prefixes are dropped, so every optimal path survives). When several
    allocations tie at the optimum the reported one may differ — the
    bound changes which tied representative survives Pareto filtering.

    ``budget_s`` bounds the wall clock. The DP holds no usable partial
    solution mid-sweep, so on expiry it falls back to the warm-start
    incumbent (returned with ``stats["interrupted"] = True``) or raises
    :class:`DeadlineExceeded` when none was supplied.
    """
    start = time.perf_counter()
    expires_at = None if budget_s is None else start + budget_s
    lb = problem.lower_bounds(relax=relax)
    warm = _warm_allocation(problem, warm_start, relax)
    upper = problem.evaluate(warm) if warm is not None else float("inf")
    try:
        labels = _dp_labels(problem, lb, upper_bound=upper, expires_at=expires_at)
    except _BudgetExpired:
        if warm is None:
            raise DeadlineExceeded(
                f"DP budget {budget_s * 1e3:.1f} ms expired with no incumbent"
            ) from None
        return AllocationResult(
            allocation=warm.copy(),
            objective=upper,
            solver="dp",
            solve_time_s=time.perf_counter() - start,
            relaxed=relax,
            stats={"warm_started": True, "interrupted": True},
        )
    final = labels.get(problem.num_gpus, [])
    if not final:
        raise InfeasibleError("no feasible allocation found by the DP")
    cost, _carry, alloc = min(final, key=lambda e: e[0])
    return AllocationResult(
        allocation=np.asarray(alloc, dtype=np.int64),
        objective=cost,
        solver="dp",
        solve_time_s=time.perf_counter() - start,
        relaxed=relax,
        stats={"final_labels": len(final), "warm_started": warm is not None},
    )


# ---------------------------------------------------------------------------
# Brute force (test oracle)
# ---------------------------------------------------------------------------

def solve_bruteforce(
    problem: AllocationProblem,
    relax: bool = False,
    warm_start: np.ndarray | None = None,
    budget_s: float | None = None,
) -> AllocationResult:
    """Enumerate every feasible allocation. Exponential — tests only.

    ``warm_start`` is accepted for interface uniformity and ignored
    (exhaustive enumeration has nothing to prune). ``budget_s`` bounds
    the wall clock: on expiry the best allocation enumerated so far is
    returned with ``stats["interrupted"] = True`` (or
    :class:`DeadlineExceeded` if none was feasible yet).
    """
    start = time.perf_counter()
    expires_at = None if budget_s is None else start + budget_s
    lb = problem.lower_bounds(relax=relax)
    G, I = problem.num_gpus, problem.num_runtimes
    spare = G - int(lb.sum())
    best_cost, best_alloc = float("inf"), None
    checked = 0
    ticks = 0
    interrupted = False
    # Distribute `spare` extra GPUs over I runtimes (stars and bars).
    for extra in itertools.product(range(spare + 1), repeat=I):
        ticks += 1
        if (
            expires_at is not None
            and not ticks & 511
            and time.perf_counter() >= expires_at
        ):
            interrupted = True
            break
        if sum(extra) != spare:
            continue
        alloc = lb + np.asarray(extra, dtype=np.int64)
        checked += 1
        cost = problem.evaluate(alloc)
        if cost < best_cost:
            best_cost, best_alloc = cost, alloc
    if best_alloc is None:
        if interrupted:
            raise DeadlineExceeded(
                f"brute-force budget {budget_s * 1e3:.1f} ms expired "
                "before any feasible allocation was enumerated"
            )
        raise InfeasibleError("no feasible allocation exists")
    stats = {"allocations_checked": checked}
    if interrupted:
        stats["interrupted"] = True
    return AllocationResult(
        allocation=best_alloc,
        objective=best_cost,
        solver="brute",
        solve_time_s=time.perf_counter() - start,
        relaxed=relax,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Greedy first-fit (anytime-ladder bottom rung)
# ---------------------------------------------------------------------------

def _spread_spare(problem: AllocationProblem, alloc: np.ndarray, spare: int) -> None:
    """Distribute ``spare`` GPUs over runtimes proportional to demand, O(I).

    Mutates ``alloc`` in place; fractional remainders are resolved by
    largest-remainder rounding so exactly ``spare`` GPUs are placed.
    """
    if spare <= 0:
        return
    I = problem.num_runtimes
    total = float(problem.demand.sum())
    weights = problem.demand / total if total > _EPS else np.full(I, 1.0 / I)
    extra = np.floor(weights * spare).astype(np.int64)
    left = spare - int(extra.sum())
    if left > 0:
        order = np.argsort(-(weights * spare - extra), kind="stable")
        extra[order[:left]] += 1
    alloc += extra


def solve_greedy(
    problem: AllocationProblem,
    relax: bool = False,
    warm_start: np.ndarray | None = None,
    budget_s: float | None = None,
) -> AllocationResult:
    """First-fit heuristic — the bottom rung of the anytime ladder.

    Walks runtimes shortest→longest giving each just enough instances
    (beyond its Eq. 3 bound) to absorb the demand arriving at it under
    the Eq. 4 cascade, then spreads leftover GPUs proportional to
    demand. O(I) — finishes in microseconds at any pool size, so it is
    the rung that guarantees the anytime ladder always holds a feasible
    allocation no matter how tight the deadline. ``budget_s`` is
    accepted for ladder-interface uniformity and never needed.

    A feasible ``warm_start`` is kept instead when it scores better —
    the greedy rung must never degrade an allocation already held.
    """
    start = time.perf_counter()
    lb = problem.lower_bounds(relax=relax)
    G, I = problem.num_gpus, problem.num_runtimes
    alloc = lb.copy()
    spare = G - int(alloc.sum())
    carry = 0.0
    for i in range(I):
        arrive = carry + float(problem.demand[i])
        unit = float(problem.capacity[i])
        cap = float(alloc[i]) * unit
        if arrive > cap + _EPS and spare > 0:
            need = min(spare, int(np.ceil((arrive - cap) / unit - _EPS)))
            alloc[i] += need
            spare -= need
            cap += need * unit
        carry = max(arrive - cap, 0.0)
    _spread_spare(problem, alloc, spare)
    objective = problem.evaluate(alloc)
    warm = _warm_allocation(problem, warm_start, relax)
    warm_used = False
    if warm is not None:
        warm_obj = problem.evaluate(warm)
        if warm_obj < objective:
            alloc, objective, warm_used = warm.copy(), warm_obj, True
    return AllocationResult(
        allocation=alloc,
        objective=objective,
        solver="greedy",
        solve_time_s=time.perf_counter() - start,
        relaxed=relax,
        stats={"warm_started": warm_used},
    )


# ---------------------------------------------------------------------------
# Local search (production scale)
# ---------------------------------------------------------------------------

def solve_local_search(
    problem: AllocationProblem,
    relax: bool = False,
    max_rounds: int = 10_000,
    warm_start: np.ndarray | None = None,
    budget_s: float | None = None,
) -> AllocationResult:
    """Greedy seed + steepest-descent single-GPU moves.

    Seed: lower bounds, then add remaining GPUs one at a time to the
    runtime with the best marginal objective improvement. Improve: move
    ``k ∈ {1, 2, 3}`` GPUs between a pair of runtimes while any move
    helps (multi-GPU moves escape the single-move local optima the
    cascade objective creates). The objective evaluation is O(I), so
    each round is O(I²) — comfortably fast for 1000 GPUs × 16 runtimes.

    A feasible ``warm_start`` replaces the greedy seeding phase (the
    dominant cost at scale: O(spare·I²) evaluations) — descent starts
    from the given allocation. Starting from a previous *optimum*, the
    result can only match or improve on that allocation's cost; with no
    usable warm start the cold path runs unchanged.

    ``budget_s`` bounds the wall clock. Expiry during seeding completes
    the allocation instantly with a proportional spread of the unplaced
    GPUs (feasibility is never sacrificed); expiry during descent keeps
    the current (always-feasible) allocation. Either way the result
    carries ``stats["interrupted"] = True``.
    """
    start = time.perf_counter()
    expires_at = None if budget_s is None else start + budget_s
    lb = problem.lower_bounds(relax=relax)
    G, I = problem.num_gpus, problem.num_runtimes
    warm = _warm_allocation(problem, warm_start, relax)
    interrupted = False
    if warm is not None:
        alloc = warm.copy()
        current = problem.evaluate(alloc)
    else:
        alloc = lb.copy()
        spare = G - int(alloc.sum())
        current = problem.evaluate(alloc)
        # Greedy seeding by best marginal gain.
        for placed in range(spare):
            if expires_at is not None and time.perf_counter() >= expires_at:
                _spread_spare(problem, alloc, spare - placed)
                current = problem.evaluate(alloc)
                interrupted = True
                break
            best_i, best_cost = -1, float("inf")
            for i in range(I):
                alloc[i] += 1
                cost = problem.evaluate(alloc)
                alloc[i] -= 1
                if cost < best_cost:
                    best_i, best_cost = i, cost
            alloc[best_i] += 1
            current = best_cost
    # Steepest-descent pairwise moves.
    rounds = 0
    improved = not interrupted
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        best_move, best_cost = None, current
        for src in range(I):
            headroom = int(alloc[src] - lb[src])
            for k in (1, 2, 3):
                if expires_at is not None and time.perf_counter() >= expires_at:
                    interrupted = True
                    break
                if headroom < k:
                    break
                alloc[src] -= k
                for dst in range(I):
                    if dst == src:
                        continue
                    alloc[dst] += k
                    cost = problem.evaluate(alloc)
                    if cost < best_cost - _EPS:
                        best_move, best_cost = (src, dst, k), cost
                    alloc[dst] -= k
                alloc[src] += k
            if interrupted:
                break
        if best_move is not None:
            src, dst, k = best_move
            alloc[src] -= k
            alloc[dst] += k
            current = best_cost
            improved = not interrupted
    stats = {"rounds": rounds, "warm_started": warm is not None}
    if interrupted:
        stats["interrupted"] = True
    return AllocationResult(
        allocation=alloc,
        objective=current,
        solver="local",
        solve_time_s=time.perf_counter() - start,
        relaxed=relax,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# MILP validation path (exercises repro.solver)
# ---------------------------------------------------------------------------

def _milp_warm_cascade(
    problem: AllocationProblem, warm: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(serve, carry) vectors of a warm allocation under Eqs. 4–5."""
    I = problem.num_runtimes
    serve = np.zeros(I)
    carry = np.zeros(I)
    c = 0.0
    for i in range(I):
        arrive = c + float(problem.demand[i])
        cap = float(warm[i]) * float(problem.capacity[i])
        if i < I - 1:
            serve[i] = min(arrive, cap)
            c = max(arrive - cap, 0.0)
            carry[i] = c
        else:
            serve[i] = arrive
            carry[i] = 0.0
    return serve, carry


def solve_milp_encoding(
    problem: AllocationProblem,
    relax: bool = False,
    tangents_per_choice: int = 6,
    max_nodes: int = 200_000,
    warm_start: np.ndarray | None = None,
    budget_s: float | None = None,
) -> AllocationResult:
    """Eqs. 1–7 as a MILP on the in-house branch & bound.

    The ``min`` of Eq. 5 is enforced with an indicator binary per
    runtime, and each convex serving-cost curve ``g_{i,n}(s)`` is
    under-approximated by tangent lines gated on the instance-count
    selection binaries ``y_{i,n}``. The reported objective is therefore
    a *lower bound* that converges to the DP optimum as
    ``tangents_per_choice`` grows; the returned allocation is exact-
    evaluated before being reported. Intended for small instances
    (G ≤ ~10) as a cross-validation of the solver substrate.

    A feasible ``warm_start`` allocation is lifted to a full MILP point
    (selection binaries, cascade flows, epigraph costs) that seeds the
    branch & bound incumbent, tightening pruning from the first node.

    When the branch & bound stops early — node cap or ``budget_s``
    wall-clock deadline — the best incumbent found is returned with
    ``stats["interrupted"] = True`` instead of raising; only a stop
    with *no* incumbent raises (:class:`DeadlineExceeded` when the
    deadline caused it, :class:`SolverError` otherwise).
    """
    start = time.perf_counter()
    lb = problem.lower_bounds(relax=relax)
    G, I = problem.num_gpus, problem.num_runtimes
    total_demand = float(problem.demand.sum())
    big_m = max(total_demand, 1.0) * max(
        problem.mean_latency(i, total_demand) for i in range(I)
    )
    warm = _warm_allocation(problem, warm_start, relax)
    warm_vals: dict | None = None
    warm_serve = warm_carry = None
    if warm is not None:
        warm_serve, warm_carry = _milp_warm_cascade(problem, warm)
        warm_vals = {}

    m = Model("arlo-allocation")
    # y[i][n] — runtime i runs exactly n instances.
    choices: list[list[int]] = []
    y: list[dict[int, object]] = []
    for i in range(I):
        opts = list(range(int(lb[i]), G + 1))
        choices.append(opts)
        y.append({n: m.add_var(ub=1.0, integer=True, name=f"y[{i},{n}]")
                  for n in opts})
        m.add_constr(LinExpr.sum(y[i].values()) == 1)
        if warm_vals is not None:
            for n in opts:
                warm_vals[y[i][n]] = 1.0 if n == int(warm[i]) else 0.0
    # Σ N_i = G.
    m.add_constr(
        LinExpr.sum(
            n * y[i][n] for i in range(I) for n in choices[i]
        ) == G
    )
    serve = [m.add_var(ub=total_demand, name=f"serve[{i}]") for i in range(I)]
    carry = [m.add_var(ub=total_demand, name=f"carry[{i}]") for i in range(I)]
    cost = [m.add_var(ub=big_m, name=f"cost[{i}]") for i in range(I)]
    z = [m.add_var(ub=1.0, integer=True, name=f"z[{i}]") for i in range(I)]

    for i in range(I):
        if warm_vals is not None:
            warm_vals[serve[i]] = float(warm_serve[i])
            warm_vals[carry[i]] = float(warm_carry[i])
            arrive_w = (float(warm_carry[i - 1]) if i > 0 else 0.0) + float(
                problem.demand[i]
            )
            cap_w = float(warm[i]) * float(problem.capacity[i])
            # z selects the binding side of the Eq. 5 min.
            warm_vals[z[i]] = 1.0 if cap_w < arrive_w - _EPS else 0.0
            warm_cost = 0.0
        arrive = (carry[i - 1] if i > 0 else LinExpr()) + float(problem.demand[i])
        cap_expr = LinExpr.sum(
            n * float(problem.capacity[i]) * y[i][n] for n in choices[i]
        )
        if i < I - 1:
            # serve = min(arrive, cap):  ≤ both, ≥ one of them via z.
            m.add_constr(serve[i] <= arrive)
            m.add_constr(serve[i] <= cap_expr)
            m.add_constr(serve[i] >= arrive - big_m * z[i])
            m.add_constr(serve[i] >= cap_expr - big_m * (1 - z[i]))
            m.add_constr(carry[i] >= arrive - cap_expr)
            m.add_constr(carry[i] <= arrive - serve[i] + _EPS)
        else:
            m.add_constr(serve[i] == arrive)
            m.add_constr(carry[i] == 0)
        # Cost epigraph per instance-count choice.
        for n in choices[i]:
            if n == 0:
                # Zero instances can serve nothing.
                m.add_constr(serve[i] <= big_m * (1 - y[i][n]))
                continue
            service = float(problem.service_ms[i])

            def g(s: float, n=n, service=service) -> float:
                b = max(s / n, 1.0)
                return s * (problem.overhead_ms + service * (b + 1.0) / 2.0)

            hi = max(total_demand, float(n))
            for tan in tangent_lines(g, 0.0, hi, tangents_per_choice):
                m.add_constr(
                    cost[i] >= tan.slope * serve[i] + tan.intercept
                    - big_m * (1 - y[i][n])
                )
                if warm_vals is not None:
                    gate = 0.0 if n == int(warm[i]) else big_m
                    warm_cost = max(
                        warm_cost,
                        tan.slope * float(warm_serve[i]) + tan.intercept - gate,
                    )
        if warm_vals is not None:
            warm_vals[cost[i]] = warm_cost
    m.minimize(LinExpr.sum(cost))
    # Model build time counts against the budget: hand B&B the remainder.
    deadline_s = None
    if budget_s is not None:
        deadline_s = max(budget_s - (time.perf_counter() - start), 1e-4)
    sol = m.solve(max_nodes=max_nodes, warm_values=warm_vals, deadline_s=deadline_s)
    interrupted = bool(sol.extra.get("interrupted", False))
    if sol.x is None:
        if interrupted and budget_s is not None:
            raise DeadlineExceeded(
                f"MILP budget {budget_s * 1e3:.1f} ms expired with no incumbent"
            )
        raise SolverError(f"MILP encoding terminated with status {sol.status}")
    alloc = np.array(
        [sum(n for n in choices[i] if round(sol[y[i][n]]) == 1) for i in range(I)],
        dtype=np.int64,
    )
    stats = {
        "lower_bound": sol.objective,
        "nodes": sol.nodes_explored,
        "lp_iterations": int(sol.extra.get("lp_iterations", 0)),
        "warm_started": bool(sol.extra.get("warm_started", False)),
    }
    if interrupted:
        stats["interrupted"] = True
    return AllocationResult(
        allocation=alloc,
        objective=problem.evaluate(alloc),
        solver="milp",
        solve_time_s=time.perf_counter() - start,
        relaxed=relax,
        stats=stats,
    )


_SOLVERS = {
    "dp": solve_dp,
    "brute": solve_bruteforce,
    "greedy": solve_greedy,
    "local": solve_local_search,
    "milp": solve_milp_encoding,
}

#: Above this many GPUs the exact DP yields to local search by default.
_DP_SCALE_LIMIT = 120


def solve_allocation(
    problem: AllocationProblem,
    method: str = "auto",
    relax: bool = False,
    warm_start: np.ndarray | None = None,
    budget_s: float | None = None,
) -> AllocationResult:
    """Solve Eqs. 1–7 with the requested (or size-appropriate) solver.

    ``warm_start`` is an optional prior allocation (typically last
    period's) used to seed bounds/incumbents; infeasible warm starts
    are validated away, and exact solvers return results identical to
    a cold solve.

    ``budget_s`` is an optional wall-clock budget: a solver that runs
    out returns its best incumbent with ``stats["interrupted"] = True``
    when it holds one, and raises :class:`DeadlineExceeded` otherwise.
    (See :func:`repro.perf.anytime.solve_anytime` for the deadline-
    driven ladder that composes the solvers.)
    """
    if method == "auto":
        method = "dp" if problem.num_gpus <= _DP_SCALE_LIMIT else "local"
    try:
        solver = _SOLVERS[method]
    except KeyError:
        raise ConfigurationError(
            f"unknown solver {method!r}; options: auto, {sorted(_SOLVERS)}"
        ) from None
    return solver(problem, relax=relax, warm_start=warm_start, budget_s=budget_s)
