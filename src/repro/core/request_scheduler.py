"""The Request Scheduler — Algorithm 1 of the paper (§3.4).

On each arrival the scheduler walks the candidate runtimes (those whose
``max_length`` fits the request) in increasing ``max_length`` order,
peeking at most ``L`` levels. A level's head instance is accepted when
its congestion ``P = outstanding / capacity`` is below the threshold
``λ``; every rejection decays the threshold by ``α``, making demotion
progressively *harder* — the conservative-demotion intuition that keeps
larger runtimes free for the longer requests only they can serve. When
no candidate passes, the request falls back to the head of its ideal
(top candidate) runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.instance import RuntimeInstance
from repro.core.mlq import MultiLevelQueue
from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.registry import RuntimeRegistry


@dataclass(frozen=True)
class RequestSchedulerConfig:
    """Algorithm 1 parameters (paper defaults: λ=0.85, α=0.9, L=6)."""

    lam: float = 0.85
    alpha: float = 0.9
    max_peek_levels: int = 6

    def __post_init__(self) -> None:
        if not 0 < self.lam <= 1.0:
            raise ConfigurationError("λ must be in (0, 1]")
        if not 0 < self.alpha <= 1.0:
            raise ConfigurationError("α must be in (0, 1]")
        if self.max_peek_levels < 1:
            raise ConfigurationError("L must be >= 1")


@dataclass
class DispatchDecision:
    """Where a request went and why (for tests and deep-dive reports)."""

    instance: RuntimeInstance
    level: int
    ideal_level: int
    levels_peeked: int
    fell_back: bool

    @property
    def demoted(self) -> bool:
        return self.level > self.ideal_level


@dataclass
class ArloRequestScheduler:
    """Stateful dispatcher over a multi-level queue."""

    registry: RuntimeRegistry
    mlq: MultiLevelQueue
    config: RequestSchedulerConfig = field(default_factory=RequestSchedulerConfig)
    #: Health gate (circuit breaker): when set, a head instance the gate
    #: rejects is treated as absent — the level is skipped without
    #: consuming a peek. Wired by the resilience subsystem; None = no
    #: gating (every MLQ member is dispatchable).
    gate: Callable[[RuntimeInstance], bool] | None = None
    #: Dispatch counters for the deep-dive reports.
    dispatched: int = 0
    demotions: int = 0
    fallbacks: int = 0
    gated: int = 0

    def __post_init__(self) -> None:
        if len(self.mlq) != len(self.registry):
            raise ConfigurationError(
                "multi-level queue arity must match the polymorph set"
            )

    def select(self, length: int) -> DispatchDecision:
        """Algorithm 1: pick the runtime instance for one request.

        Levels that currently have no instances are skipped without
        consuming a peek or decaying the threshold (there is nothing to
        evaluate); the paper's cluster always has a populated top level
        thanks to Eq. 7.
        """
        cfg = self.config
        candidates = self.registry.candidate_indexes(length)  # sorted ascending
        ideal = candidates.start
        lam = cfg.lam
        peeked = 0
        first_nonempty: tuple[int, RuntimeInstance] | None = None
        for level in candidates:
            if peeked >= cfg.max_peek_levels:
                break
            head = self.mlq.head(level)
            if head is None:
                continue
            if self.gate is not None and not self.gate(head):
                self.gated += 1
                continue
            if first_nonempty is None:
                first_nonempty = (level, head)
            peeked += 1
            if head.congestion() < lam:
                return self._done(head, level, ideal, peeked, fell_back=False)
            lam *= cfg.alpha
        if first_nonempty is None:
            raise CapacityError(
                f"no deployed runtime can serve a request of length {length}"
            )
        level, head = first_nonempty
        return self._done(head, level, ideal, peeked, fell_back=True)

    def _done(
        self,
        instance: RuntimeInstance,
        level: int,
        ideal: int,
        peeked: int,
        fell_back: bool,
    ) -> DispatchDecision:
        self.dispatched += 1
        if level > ideal:
            self.demotions += 1
        if fell_back:
            self.fallbacks += 1
        return DispatchDecision(
            instance=instance,
            level=level,
            ideal_level=ideal,
            levels_peeked=peeked,
            fell_back=fell_back,
        )

    def dispatch(self, now_ms: float, length: int) -> tuple[DispatchDecision, float, float]:
        """Select, enqueue, and refresh the queue (Algorithm 1 lines 21–22).

        Returns (decision, service start, completion time).
        """
        decision = self.select(length)
        start, finish = decision.instance.enqueue(now_ms, length)
        self.mlq.refresh(decision.instance)
        return decision, start, finish

    def stats(self) -> dict[str, float]:
        """Aggregate dispatch statistics (queue state read in O(levels))."""
        d = max(self.dispatched, 1)
        return {
            "dispatched": float(self.dispatched),
            "demotion_rate": self.demotions / d,
            "fallback_rate": self.fallbacks / d,
            "gated": float(self.gated),
            "queue_outstanding": float(self.mlq.total_outstanding()),
            "queue_instances": float(self.mlq.total_instances()),
        }

    def level_congestion(self, level: int) -> float:
        """Aggregate congestion of one MLQ level — O(1)."""
        return self.mlq.level_congestion(level)
