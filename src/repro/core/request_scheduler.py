"""The Request Scheduler — Algorithm 1 of the paper (§3.4).

On each arrival the scheduler walks the candidate runtimes (those whose
``max_length`` fits the request) in increasing ``max_length`` order,
peeking at most ``L`` levels. A level's head instance is accepted when
its congestion ``P = outstanding / capacity`` is below the threshold
``λ``; every rejection decays the threshold by ``α``, making demotion
progressively *harder* — the conservative-demotion intuition that keeps
larger runtimes free for the longer requests only they can serve. When
no candidate passes, the request falls back to the head of its ideal
(top candidate) runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable

from repro.cluster.instance import _ACTIVE, RuntimeInstance
from repro.core.mlq import MultiLevelQueue
from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.registry import RuntimeRegistry


@dataclass(frozen=True)
class RequestSchedulerConfig:
    """Algorithm 1 parameters (paper defaults: λ=0.85, α=0.9, L=6)."""

    lam: float = 0.85
    alpha: float = 0.9
    max_peek_levels: int = 6

    def __post_init__(self) -> None:
        if not 0 < self.lam <= 1.0:
            raise ConfigurationError("λ must be in (0, 1]")
        if not 0 < self.alpha <= 1.0:
            raise ConfigurationError("α must be in (0, 1]")
        if self.max_peek_levels < 1:
            raise ConfigurationError("L must be >= 1")


@dataclass
class DispatchDecision:
    """Where a request went and why (for tests and deep-dive reports)."""

    instance: RuntimeInstance
    level: int
    ideal_level: int
    levels_peeked: int
    fell_back: bool

    @property
    def demoted(self) -> bool:
        return self.level > self.ideal_level


@dataclass
class ArloRequestScheduler:
    """Stateful dispatcher over a multi-level queue."""

    registry: RuntimeRegistry
    mlq: MultiLevelQueue
    config: RequestSchedulerConfig = field(default_factory=RequestSchedulerConfig)
    #: Health gate (circuit breaker): when set, a head instance the gate
    #: rejects is treated as absent — the level is skipped without
    #: consuming a peek. Wired by the resilience subsystem; None = no
    #: gating (every MLQ member is dispatchable).
    gate: Callable[[RuntimeInstance], bool] | None = None
    #: Dispatch counters for the deep-dive reports.
    dispatched: int = 0
    demotions: int = 0
    fallbacks: int = 0
    gated: int = 0

    def __post_init__(self) -> None:
        if len(self.mlq) != len(self.registry):
            raise ConfigurationError(
                "multi-level queue arity must match the polymorph set"
            )
        # Hot-path copies of the (frozen) config scalars: `_walk` runs
        # once per request and attribute-chasing through the config
        # dataclass costs more than the walk's own arithmetic.
        self._lam = self.config.lam
        self._alpha = self.config.alpha
        self._max_peek = self.config.max_peek_levels

    def _walk(
        self, length: int
    ) -> tuple[RuntimeInstance, int, int, int, bool]:
        """Algorithm 1's candidate walk, shared by both dispatch paths.

        Returns ``(instance, level, ideal, peeked, fell_back)`` without
        allocating a decision object. Levels that currently have no
        instances are skipped without consuming a peek or decaying the
        threshold (there is nothing to evaluate); the paper's cluster
        always has a populated top level thanks to Eq. 7.
        """
        ideal = self.registry.ideal_index(length)  # candidates ascend from here
        levels = self.mlq.levels
        num_levels = len(levels)
        gate = self.gate
        lam = self._lam
        alpha = self._alpha
        max_peek = self._max_peek
        peeked = 0
        first_nonempty: RuntimeInstance | None = None
        first_level = -1
        level = ideal
        while level < num_levels:
            if peeked >= max_peek:
                break
            head = levels[level].head()
            if head is not None:
                if gate is not None and not gate(head):
                    self.gated += 1
                    level += 1
                    continue
                if first_nonempty is None:
                    first_nonempty = head
                    first_level = level
                peeked += 1
                # head.congestion() < lam, with the division inlined
                # (identical float arithmetic, no method call).
                if head.outstanding / head._capacity < lam:
                    return head, level, ideal, peeked, False
                lam *= alpha
            level += 1
        if first_nonempty is None:
            raise CapacityError(
                f"no deployed runtime can serve a request of length {length}"
            )
        return first_nonempty, first_level, ideal, peeked, True

    def select(self, length: int) -> DispatchDecision:
        """Algorithm 1: pick the runtime instance for one request."""
        head, level, ideal, peeked, fell_back = self._walk(length)
        return self._done(head, level, ideal, peeked, fell_back=fell_back)

    def _done(
        self,
        instance: RuntimeInstance,
        level: int,
        ideal: int,
        peeked: int,
        fell_back: bool,
    ) -> DispatchDecision:
        self.dispatched += 1
        if level > ideal:
            self.demotions += 1
        if fell_back:
            self.fallbacks += 1
        return DispatchDecision(
            instance=instance,
            level=level,
            ideal_level=ideal,
            levels_peeked=peeked,
            fell_back=fell_back,
        )

    def dispatch(self, now_ms: float, length: int) -> tuple[DispatchDecision, float, float]:
        """Select, enqueue, and refresh the queue (Algorithm 1 lines 21–22).

        Returns (decision, service start, completion time).
        """
        decision = self.select(length)
        start, finish = decision.instance.enqueue(now_ms, length)
        self.mlq.refresh(decision.instance)
        return decision, start, finish

    def dispatch_traced(
        self,
        now_ms: float,
        length: int,
        probes: list[tuple[int, float, float, str]],
    ) -> tuple[DispatchDecision, float, float]:
        """:meth:`dispatch` with the candidate walk narrated into
        ``probes`` — one ``(level, P, threshold, verdict)`` tuple per
        evaluated level, verdicts ``accepted`` / ``rejected`` /
        ``gated``.

        This is the sampled-request path of the observability layer:
        only requests the tracer selected pay for it, so it stays a
        faithful (non-inlined) mirror of :meth:`_walk` — counters and
        the chosen instance are identical to the fast path.
        """
        ideal = self.registry.ideal_index(length)
        levels = self.mlq.levels
        num_levels = len(levels)
        gate = self.gate
        lam = self._lam
        alpha = self._alpha
        max_peek = self._max_peek
        peeked = 0
        first_nonempty: RuntimeInstance | None = None
        first_level = -1
        chosen: RuntimeInstance | None = None
        chosen_level = -1
        level = ideal
        while level < num_levels:
            if peeked >= max_peek:
                break
            head = levels[level].head()
            if head is not None:
                p = head.outstanding / head._capacity
                if gate is not None and not gate(head):
                    self.gated += 1
                    probes.append((level, p, lam, "gated"))
                    level += 1
                    continue
                if first_nonempty is None:
                    first_nonempty = head
                    first_level = level
                peeked += 1
                if p < lam:
                    probes.append((level, p, lam, "accepted"))
                    chosen, chosen_level = head, level
                    break
                probes.append((level, p, lam, "rejected"))
                lam *= alpha
            level += 1
        fell_back = chosen is None
        if fell_back:
            if first_nonempty is None:
                raise CapacityError(
                    f"no deployed runtime can serve a request of length "
                    f"{length}"
                )
            chosen, chosen_level = first_nonempty, first_level
        decision = self._done(
            chosen, chosen_level, ideal, peeked, fell_back=fell_back
        )
        start, finish = chosen.enqueue(now_ms, length)
        self.mlq.refresh(chosen)
        return decision, start, finish

    def dispatch_fast(
        self, now_ms: float, length: int
    ) -> tuple[RuntimeInstance, float, float]:
        """Hot-path dispatch: Algorithm 1 without materialising a
        :class:`DispatchDecision` (the simulator calls this once per
        arrival; counters stay exact).

        The candidate walk is a hand-fused copy of :meth:`_walk` with
        ``InstanceHeap.head``, ``RuntimeInstance.enqueue``, and
        ``InstanceHeap.refresh`` inlined — this method runs once per
        simulated request and each call layer is measurable. The
        enqueue validation is provably redundant here: ``ideal_index``
        rejects non-positive and oversized lengths, every level ≥ ideal
        fits the request, and ``head`` only yields ACTIVE members. Any
        behavioural change must be mirrored in the originals (the
        serial/sharded equivalence tests catch divergence).

        Returns (instance, service start, completion time).
        """
        ideal = self.registry.ideal_index(length)
        levels = self.mlq.levels
        num_levels = len(levels)
        gate = self.gate
        lam = self._lam
        alpha = self._alpha
        max_peek = self._max_peek
        peeked = 0
        first_nonempty: RuntimeInstance | None = None
        first_level = -1
        level = ideal
        head = None
        while level < num_levels:
            if peeked >= max_peek:
                break
            # --- InstanceHeap.head, inlined (lazy stale-entry discard)
            level_heap = levels[level]
            members = level_heap._members
            head = None
            if members:
                entry_heap = level_heap._heap
                while entry_heap:
                    entry = entry_heap[0]
                    candidate = entry[3]
                    if (
                        entry[2] == candidate._epoch
                        and candidate.status is _ACTIVE
                        and candidate.instance_id in members
                    ):
                        head = candidate
                        break
                    heappop(entry_heap)
            if head is not None:
                if gate is not None and not gate(head):
                    self.gated += 1
                    head = None
                    level += 1
                    continue
                if first_nonempty is None:
                    first_nonempty = head
                    first_level = level
                peeked += 1
                if head.outstanding / head._capacity < lam:
                    break
                lam *= alpha
            head = None
            level += 1
        if head is None:
            if first_nonempty is None:
                raise CapacityError(
                    f"no deployed runtime can serve a request of length "
                    f"{length}"
                )
            head = first_nonempty
            level = first_level
            self.fallbacks += 1
        self.dispatched += 1
        if level > ideal:
            self.demotions += 1
        # --- RuntimeInstance.enqueue, inlined (validation elided — see
        # docstring) ---
        service = head._service_table[length] * head.slow_factor
        busy = head.busy_until_ms
        start = now_ms if now_ms > busy else busy
        finish = start + service
        head.busy_until_ms = finish
        out = head.outstanding + 1
        head.outstanding = out
        head._epoch += 1
        tracker = head.tracker
        if tracker is not None:
            tracker.on_enqueue(head)
        # --- InstanceHeap.refresh, inlined. The chosen instance is by
        # construction a member of its own level's heap, so both the
        # MultiLevelQueue level lookup and the membership test go away.
        level_heap = levels[level]
        last = level_heap._last_outstanding
        key = head.instance_id
        level_heap.outstanding_total += out - last[key]
        last[key] = out
        heappush(
            level_heap._heap,
            (out, next(level_heap._counter), head._epoch, head),
        )
        return head, start, finish

    def stats(self) -> dict[str, float]:
        """Aggregate dispatch statistics (queue state read in O(levels))."""
        d = max(self.dispatched, 1)
        return {
            "dispatched": float(self.dispatched),
            "demotion_rate": self.demotions / d,
            "fallback_rate": self.fallbacks / d,
            "gated": float(self.gated),
            "queue_outstanding": float(self.mlq.total_outstanding()),
            "queue_instances": float(self.mlq.total_instances()),
        }

    def level_congestion(self, level: int) -> float:
        """Aggregate congestion of one MLQ level — O(1)."""
        return self.mlq.level_congestion(level)
