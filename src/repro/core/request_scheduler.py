"""The Request Scheduler — Algorithm 1 of the paper (§3.4).

On each arrival the scheduler walks the candidate runtimes (those whose
``max_length`` fits the request) in increasing ``max_length`` order,
peeking at most ``L`` levels. A level's head instance is accepted when
its congestion ``P = outstanding / capacity`` is below the threshold
``λ``; every rejection decays the threshold by ``α``, making demotion
progressively *harder* — the conservative-demotion intuition that keeps
larger runtimes free for the longer requests only they can serve. When
no candidate passes, the request falls back to the head of its ideal
(top candidate) runtime.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable

import numpy as np

from repro.cluster.instance import _ACTIVE, RuntimeInstance

#: Sort key for the batch water-fill (module-level: no per-call lambda).
_BY_OUTSTANDING = operator.attrgetter("outstanding")
from repro.core.mlq import MultiLevelQueue
from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.registry import RuntimeRegistry


@dataclass(frozen=True)
class RequestSchedulerConfig:
    """Algorithm 1 parameters (paper defaults: λ=0.85, α=0.9, L=6)."""

    lam: float = 0.85
    alpha: float = 0.9
    max_peek_levels: int = 6

    def __post_init__(self) -> None:
        if not 0 < self.lam <= 1.0:
            raise ConfigurationError("λ must be in (0, 1]")
        if not 0 < self.alpha <= 1.0:
            raise ConfigurationError("α must be in (0, 1]")
        if self.max_peek_levels < 1:
            raise ConfigurationError("L must be >= 1")


@dataclass
class DispatchDecision:
    """Where a request went and why (for tests and deep-dive reports)."""

    instance: RuntimeInstance
    level: int
    ideal_level: int
    levels_peeked: int
    fell_back: bool

    @property
    def demoted(self) -> bool:
        return self.level > self.ideal_level


@dataclass
class ArloRequestScheduler:
    """Stateful dispatcher over a multi-level queue."""

    registry: RuntimeRegistry
    mlq: MultiLevelQueue
    config: RequestSchedulerConfig = field(default_factory=RequestSchedulerConfig)
    #: Health gate (circuit breaker): when set, a head instance the gate
    #: rejects is treated as absent — the level is skipped without
    #: consuming a peek. Wired by the resilience subsystem; None = no
    #: gating (every MLQ member is dispatchable).
    gate: Callable[[RuntimeInstance], bool] | None = None
    #: Dispatch counters for the deep-dive reports.
    dispatched: int = 0
    demotions: int = 0
    fallbacks: int = 0
    gated: int = 0
    #: Of ``dispatched``, how many were admitted by the vectorized
    #: batch path (:meth:`dispatch_batch`) rather than a scalar walk.
    batched: int = 0

    def __post_init__(self) -> None:
        if len(self.mlq) != len(self.registry):
            raise ConfigurationError(
                "multi-level queue arity must match the polymorph set"
            )
        # Hot-path copies of the (frozen) config scalars: `_walk` runs
        # once per request and attribute-chasing through the config
        # dataclass costs more than the walk's own arithmetic.
        self._lam = self.config.lam
        self._alpha = self.config.alpha
        self._max_peek = self.config.max_peek_levels

    def _walk(
        self, length: int
    ) -> tuple[RuntimeInstance, int, int, int, bool]:
        """Algorithm 1's candidate walk, shared by both dispatch paths.

        Returns ``(instance, level, ideal, peeked, fell_back)`` without
        allocating a decision object. Levels that currently have no
        instances are skipped without consuming a peek or decaying the
        threshold (there is nothing to evaluate); the paper's cluster
        always has a populated top level thanks to Eq. 7.
        """
        ideal = self.registry.ideal_index(length)  # candidates ascend from here
        levels = self.mlq.levels
        num_levels = len(levels)
        gate = self.gate
        lam = self._lam
        alpha = self._alpha
        max_peek = self._max_peek
        peeked = 0
        first_nonempty: RuntimeInstance | None = None
        first_level = -1
        level = ideal
        while level < num_levels:
            if peeked >= max_peek:
                break
            head = levels[level].head()
            if head is not None:
                if gate is not None and not gate(head):
                    self.gated += 1
                    level += 1
                    continue
                if first_nonempty is None:
                    first_nonempty = head
                    first_level = level
                peeked += 1
                # head.congestion() < lam, with the division inlined
                # (identical float arithmetic, no method call).
                if head.outstanding / head._capacity < lam:
                    return head, level, ideal, peeked, False
                lam *= alpha
            level += 1
        if first_nonempty is None:
            raise CapacityError(
                f"no deployed runtime can serve a request of length {length}"
            )
        return first_nonempty, first_level, ideal, peeked, True

    def select(self, length: int) -> DispatchDecision:
        """Algorithm 1: pick the runtime instance for one request."""
        head, level, ideal, peeked, fell_back = self._walk(length)
        return self._done(head, level, ideal, peeked, fell_back=fell_back)

    def _done(
        self,
        instance: RuntimeInstance,
        level: int,
        ideal: int,
        peeked: int,
        fell_back: bool,
    ) -> DispatchDecision:
        self.dispatched += 1
        if level > ideal:
            self.demotions += 1
        if fell_back:
            self.fallbacks += 1
        return DispatchDecision(
            instance=instance,
            level=level,
            ideal_level=ideal,
            levels_peeked=peeked,
            fell_back=fell_back,
        )

    def dispatch(self, now_ms: float, length: int) -> tuple[DispatchDecision, float, float]:
        """Select, enqueue, and refresh the queue (Algorithm 1 lines 21–22).

        Returns (decision, service start, completion time).
        """
        decision = self.select(length)
        start, finish = decision.instance.enqueue(now_ms, length)
        self.mlq.refresh(decision.instance)
        return decision, start, finish

    def dispatch_traced(
        self,
        now_ms: float,
        length: int,
        probes: list[tuple[int, float, float, str]],
    ) -> tuple[DispatchDecision, float, float]:
        """:meth:`dispatch` with the candidate walk narrated into
        ``probes`` — one ``(level, P, threshold, verdict)`` tuple per
        evaluated level, verdicts ``accepted`` / ``rejected`` /
        ``gated``.

        This is the sampled-request path of the observability layer:
        only requests the tracer selected pay for it, so it stays a
        faithful (non-inlined) mirror of :meth:`_walk` — counters and
        the chosen instance are identical to the fast path.
        """
        ideal = self.registry.ideal_index(length)
        levels = self.mlq.levels
        num_levels = len(levels)
        gate = self.gate
        lam = self._lam
        alpha = self._alpha
        max_peek = self._max_peek
        peeked = 0
        first_nonempty: RuntimeInstance | None = None
        first_level = -1
        chosen: RuntimeInstance | None = None
        chosen_level = -1
        level = ideal
        while level < num_levels:
            if peeked >= max_peek:
                break
            head = levels[level].head()
            if head is not None:
                p = head.outstanding / head._capacity
                if gate is not None and not gate(head):
                    self.gated += 1
                    probes.append((level, p, lam, "gated"))
                    level += 1
                    continue
                if first_nonempty is None:
                    first_nonempty = head
                    first_level = level
                peeked += 1
                if p < lam:
                    probes.append((level, p, lam, "accepted"))
                    chosen, chosen_level = head, level
                    break
                probes.append((level, p, lam, "rejected"))
                lam *= alpha
            level += 1
        fell_back = chosen is None
        if fell_back:
            if first_nonempty is None:
                raise CapacityError(
                    f"no deployed runtime can serve a request of length "
                    f"{length}"
                )
            chosen, chosen_level = first_nonempty, first_level
        decision = self._done(
            chosen, chosen_level, ideal, peeked, fell_back=fell_back
        )
        start, finish = chosen.enqueue(now_ms, length)
        self.mlq.refresh(chosen)
        return decision, start, finish

    def dispatch_fast(
        self, now_ms: float, length: int
    ) -> tuple[RuntimeInstance, float, float]:
        """Hot-path dispatch: Algorithm 1 without materialising a
        :class:`DispatchDecision` (the simulator calls this once per
        arrival; counters stay exact).

        The candidate walk is a hand-fused copy of :meth:`_walk` with
        ``InstanceHeap.head``, ``RuntimeInstance.enqueue``, and
        ``InstanceHeap.refresh`` inlined — this method runs once per
        simulated request and each call layer is measurable. The
        enqueue validation is provably redundant here: ``ideal_index``
        rejects non-positive and oversized lengths, every level ≥ ideal
        fits the request, and ``head`` only yields ACTIVE members. Any
        behavioural change must be mirrored in the originals (the
        serial/sharded equivalence tests catch divergence).

        Returns (instance, service start, completion time).
        """
        ideal = self.registry.ideal_index(length)
        levels = self.mlq.levels
        num_levels = len(levels)
        gate = self.gate
        lam = self._lam
        alpha = self._alpha
        max_peek = self._max_peek
        peeked = 0
        first_nonempty: RuntimeInstance | None = None
        first_level = -1
        level = ideal
        head = None
        while level < num_levels:
            if peeked >= max_peek:
                break
            # --- InstanceHeap.head, inlined (lazy stale-entry discard)
            level_heap = levels[level]
            members = level_heap._members
            head = None
            if members:
                entry_heap = level_heap._heap
                while entry_heap:
                    entry = entry_heap[0]
                    candidate = entry[3]
                    if (
                        entry[2] == candidate._epoch
                        and candidate.status is _ACTIVE
                        and candidate.instance_id in members
                    ):
                        head = candidate
                        break
                    heappop(entry_heap)
            if head is not None:
                if gate is not None and not gate(head):
                    self.gated += 1
                    head = None
                    level += 1
                    continue
                if first_nonempty is None:
                    first_nonempty = head
                    first_level = level
                peeked += 1
                if head.outstanding / head._capacity < lam:
                    break
                lam *= alpha
            head = None
            level += 1
        if head is None:
            if first_nonempty is None:
                raise CapacityError(
                    f"no deployed runtime can serve a request of length "
                    f"{length}"
                )
            head = first_nonempty
            level = first_level
            self.fallbacks += 1
        self.dispatched += 1
        if level > ideal:
            self.demotions += 1
        # --- RuntimeInstance.enqueue, inlined (validation elided — see
        # docstring) ---
        service = head._service_table[length] * head.slow_factor
        busy = head.busy_until_ms
        start = now_ms if now_ms > busy else busy
        finish = start + service
        head.busy_until_ms = finish
        out = head.outstanding + 1
        head.outstanding = out
        head._epoch += 1
        tracker = head.tracker
        if tracker is not None:
            tracker.on_enqueue(head)
        # --- InstanceHeap.refresh, inlined. The chosen instance is by
        # construction a member of its own level's heap, so both the
        # MultiLevelQueue level lookup and the membership test go away.
        level_heap = levels[level]
        last = level_heap._last_outstanding
        key = head.instance_id
        level_heap.outstanding_total += out - last[key]
        last[key] = out
        heappush(
            level_heap._heap,
            (out, next(level_heap._counter), head._epoch, head),
        )
        return head, start, finish

    def dispatch_batch(
        self, now_ms: float, lengths: list[int]
    ) -> list[tuple[RuntimeInstance, float, float]] | None:
        """Batch-mode Algorithm 1 over a same-timestamp arrival run.

        Admits the longest *prefix* of the run for which a slack
        certificate proves the scalar walk would accept every request
        at its ideal level:

        - Acceptance at the ideal level is ``outstanding/capacity < λ``
          on the level's head (min-outstanding active member). With a
          uniform member capacity ``cap``, that is ``outstanding < T``
          where ``T`` is the smallest integer with ``T/cap ≥ λ``
          (computed with the same float division the scalar probe uses,
          so the boundary is bit-identical).
        - The level's slack is ``Σ max(0, T − outstanding_i)`` over
          active members. While fewer than ``slack`` requests have hit
          the level, some member — hence the head, the minimum — is
          still below ``T``, so every next probe accepts without
          decaying the threshold. The prefix therefore ends at the
          first request whose ideal level is out of slack (the scalar
          walk would demote it), has no active members or
          heterogeneous capacities (the head/threshold argument needs
          uniformity — the min-outstanding head can sit at a *smaller*
          capacity and reject while slack remains elsewhere), or is
          breaker-gated (``gate`` set disables batching wholesale).

        Returns one ``(instance, start, finish)`` triple per admitted
        request, aligned with the head of ``lengths`` — possibly fewer
        than ``len(lengths)``; the caller replays the rest through
        scalar :meth:`dispatch_fast`, which owns the precise
        demotion/fallback/error behaviour from the now-updated state.
        ``None`` means nothing was admitted and state is untouched.
        Only the ``dispatched`` counter advances — zero demotions,
        fallbacks, and gate rejections by construction, so counters
        match the scalar path decision for decision.

        Within a level the admitted requests are spread over members
        by water-filling, which yields the same per-level multiset of
        member queue depths as the scalar walk's repeated
        min-outstanding head pops — so every *future* probe sees the
        same head depth — while pairing requests with different (but
        interchangeable, same-profile) instances than the scalar run
        would. The equivalence contract is per-request *decisions*
        (level assignments and counters), not instance ids.
        """
        if self.gate is not None:
            return None
        ideals = self.registry.ideal_index_batch(lengths)
        if ideals is None:
            return None
        levels = self.mlq.levels
        demand = np.bincount(ideals, minlength=len(levels)).tolist()
        ideals_list = ideals.tolist()
        lam = self._lam
        n = len(lengths)
        # Per demanded level: (sorted active members, T, slack), or
        # None when the level cannot take part (no members, mixed
        # capacities) and must end the prefix at its first request.
        plan: list = [None] * len(levels)
        usable = [False] * len(levels)
        for lvl, d in enumerate(demand):
            if not d:
                continue
            members = [
                inst for inst in levels[lvl]._members.values()
                if inst.status is _ACTIVE
            ]
            if not members:
                continue
            cap = members[0]._capacity
            # T: smallest integer with T/cap >= lam, found with the
            # scalar probe's own float comparisons (ceil then adjust)
            # so no request lands on the wrong side of the boundary.
            T = math.ceil(lam * cap)
            while T / cap < lam:
                T += 1
            while T > 0 and (T - 1) / cap >= lam:
                T -= 1
            uniform = True
            slack = 0
            for inst in members:
                if inst._capacity != cap:
                    uniform = False
                    break
                if inst.outstanding < T:
                    slack += T - inst.outstanding
            if not uniform or not slack:
                continue
            members.sort(key=_BY_OUTSTANDING)
            plan[lvl] = (members, T, slack)
            usable[lvl] = True
        # Longest admissible prefix: per-level running count < slack.
        taken = [0] * len(levels)
        prefix = 0
        for lvl in ideals_list:
            if not usable[lvl]:
                break
            if taken[lvl] >= plan[lvl][2]:
                break
            taken[lvl] += 1
            prefix += 1
        if prefix < 4:  # not worth the fixed costs
            return None
        by_level: dict[int, list[int]] = {}
        for idx in range(prefix):
            lvl = ideals_list[idx]
            got = by_level.get(lvl)
            if got is None:
                by_level[lvl] = [idx]
            else:
                got.append(idx)
        results: list = [None] * prefix
        for lvl, idxs in by_level.items():
            members, _T, _slack = plan[lvl]
            d = len(idxs)
            m = len(members)
            outs = [inst.outstanding for inst in members]
            # Water-fill d admissions over the (ascending) member
            # depths: raise the lowest group, then spread the
            # remainder one each — the unique multiset repeated
            # min-pops produce.
            acc = 0
            filled = m
            for j in range(1, m):
                step = (outs[j] - outs[j - 1]) * j
                if acc + step >= d:
                    filled = j
                    break
                acc += step
            rem = d - acc
            quot, extra = divmod(rem, filled)
            height = outs[filled - 1]
            level_heap = levels[lvl]
            last = level_heap._last_outstanding
            pos = 0
            for i in range(filled):
                inst = members[i]
                c = height - outs[i] + quot + (1 if i < extra else 0)
                if not c:
                    continue
                # Chain the member's admissions with the exact scalar
                # enqueue arithmetic (same table lookup, same float
                # adds): start = max(now, busy), then finish-to-finish.
                table = inst._service_table
                slow = inst.slow_factor
                busy = inst.busy_until_ms
                fin = now_ms if now_ms > busy else busy
                for k in range(pos, pos + c):
                    ridx = idxs[k]
                    start = fin
                    fin = start + table[lengths[ridx]] * slow
                    results[ridx] = (inst, start, fin)
                pos += c
                inst.busy_until_ms = fin
                out = outs[i] + c
                inst.outstanding = out
                inst._epoch += 1
                tracker = inst.tracker
                if tracker is not None:
                    tracker.on_enqueue_many(inst, c)
                key = inst.instance_id
                level_heap.outstanding_total += out - last[key]
                last[key] = out
                heappush(
                    level_heap._heap,
                    (out, next(level_heap._counter), inst._epoch, inst),
                )
        self.dispatched += prefix
        self.batched += prefix
        return results

    def stats(self) -> dict[str, float]:
        """Aggregate dispatch statistics (queue state read in O(levels))."""
        d = max(self.dispatched, 1)
        return {
            "dispatched": float(self.dispatched),
            "demotion_rate": self.demotions / d,
            "fallback_rate": self.fallbacks / d,
            "gated": float(self.gated),
            "batched": float(self.batched),
            "queue_outstanding": float(self.mlq.total_outstanding()),
            "queue_instances": float(self.mlq.total_instances()),
        }

    def level_congestion(self, level: int) -> float:
        """Aggregate congestion of one MLQ level — O(1)."""
        return self.mlq.level_congestion(level)
