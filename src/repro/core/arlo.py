"""The Arlo system facade — the public entry point of the library.

Wires the offline stage (polymorph-set compilation and profiling) and
the two online schedulers into one object:

>>> from repro import ArloSystem
>>> arlo = ArloSystem.build("bert-base", num_gpus=10)
>>> decision, start, finish = arlo.handle(now_ms=0.0, length=37)

For trace-driven evaluation use :mod:`repro.sim.simulation`, which
drives an :class:`ArloSystem` (and the baselines) through a discrete-
event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.replacement import ReplacementPlan
from repro.cluster.state import ClusterState
from repro.core.allocation import AllocationProblem, AllocationResult, solve_allocation
from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import (
    ArloRequestScheduler,
    DispatchDecision,
    RequestSchedulerConfig,
)
from repro.core.runtime_scheduler import RuntimeScheduler, RuntimeSchedulerConfig
from repro.errors import ConfigurationError
from repro.runtimes.models import ModelProfile, get_model
from repro.runtimes.registry import RuntimeRegistry, build_polymorph_set
from repro.units import MINUTE


@dataclass(frozen=True)
class ArloConfig:
    """Top-level configuration of one Arlo deployment."""

    num_gpus: int
    request_scheduler: RequestSchedulerConfig = field(
        default_factory=RequestSchedulerConfig
    )
    runtime_scheduler: RuntimeSchedulerConfig = field(
        default_factory=RuntimeSchedulerConfig
    )
    demand_window_ms: float = 2 * MINUTE
    demand_ewma_alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError("need at least one GPU")


@dataclass
class ArloSystem:
    """A fully wired Arlo deployment for one request stream."""

    model: ModelProfile
    registry: RuntimeRegistry
    cluster: ClusterState
    mlq: MultiLevelQueue
    request_scheduler: ArloRequestScheduler
    runtime_scheduler: RuntimeScheduler
    config: ArloConfig

    # -- construction -----------------------------------------------------
    @classmethod
    def build(
        cls,
        model: str | ModelProfile,
        num_gpus: int,
        *,
        config: ArloConfig | None = None,
        registry: RuntimeRegistry | None = None,
        initial_demand: np.ndarray | None = None,
    ) -> "ArloSystem":
        """Offline stage + initial deployment.

        Without an ``initial_demand`` hint, the first allocation spreads
        GPUs using a mildly short-biased uniform demand guess; the first
        scheduling period replaces it with the observed distribution.
        """
        if isinstance(model, str):
            model = get_model(model)
        config = config or ArloConfig(num_gpus=num_gpus)
        if config.num_gpus != num_gpus:
            raise ConfigurationError("num_gpus mismatch between args and config")
        registry = registry or build_polymorph_set(model)
        bins = LengthBins.from_registry(registry)
        estimator = DemandEstimator(
            bins=bins,
            slo_ms=model.slo_ms,
            window_ms=config.demand_window_ms,
            ewma_alpha=config.demand_ewma_alpha,
        )
        if initial_demand is None:
            # Uniform-by-bin prior scaled to roughly one SLO of capacity.
            per_bin = np.array([p.capacity for p in registry], dtype=float)
            initial_demand = per_bin * num_gpus / (2.0 * len(registry))
        problem = AllocationProblem.from_profiles(
            num_gpus=num_gpus,
            demand=np.asarray(initial_demand, dtype=float),
            profiles=list(registry),
        )
        allocation = solve_allocation(problem, relax=True).allocation
        cluster = ClusterState.bootstrap(registry, allocation)
        mlq = MultiLevelQueue.from_cluster(cluster)
        request_scheduler = ArloRequestScheduler(
            registry=registry, mlq=mlq, config=config.request_scheduler
        )
        runtime_scheduler = RuntimeScheduler(
            registry=registry, estimator=estimator, config=config.runtime_scheduler
        )
        return cls(
            model=model,
            registry=registry,
            cluster=cluster,
            mlq=mlq,
            request_scheduler=request_scheduler,
            runtime_scheduler=runtime_scheduler,
            config=config,
        )

    # -- online serving ------------------------------------------------------
    def handle(
        self, now_ms: float, length: int
    ) -> tuple[DispatchDecision, float, float]:
        """Admit one request: record demand, dispatch, enqueue."""
        self.runtime_scheduler.estimator.observe(now_ms, length)
        return self.request_scheduler.dispatch(now_ms, length)

    def complete(self, instance_id: int) -> None:
        """Acknowledge a completion (keeps the MLQ keys fresh)."""
        instance = self.cluster.instances.get(instance_id)
        if instance is None:
            raise ConfigurationError(f"unknown instance {instance_id}")
        instance.complete()
        self.mlq.refresh(instance)

    def reschedule(self, now_ms: float) -> tuple[AllocationResult, ReplacementPlan]:
        """Run one Runtime Scheduler period (§3.3)."""
        return self.runtime_scheduler.step(now_ms, self.cluster)

    @property
    def slo_ms(self) -> float:
        return self.model.slo_ms

    def snapshot(self) -> dict[str, object]:
        """Operational snapshot for dashboards and tests."""
        return {
            "allocation": self.cluster.allocation().tolist(),
            "outstanding": self.cluster.total_outstanding(),
            "gpus": self.cluster.num_gpus,
            "dispatch": self.request_scheduler.stats(),
            "solver_fallbacks": self.runtime_scheduler.solver_fallbacks,
            "solver_incidents": len(self.runtime_scheduler.incidents),
        }
