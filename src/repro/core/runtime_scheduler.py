"""The periodic Runtime Scheduler (§3.3).

Every decision period (120 s by default) the scheduler:

1. reads the demand estimate ``Q`` from the :class:`DemandEstimator`;
2. solves Eqs. 1–7 for the optimal allocation ``N`` given the GPUs
   currently provisioned;
3. emits a minimal-change :class:`ReplacementPlan` moving the cluster
   from its current deployment to ``N``.

It owns no clock — the simulator (or a real control loop) calls
:meth:`RuntimeScheduler.step` on its schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.replacement import ReplacementPlan, plan_replacement
from repro.cluster.state import ClusterState
from repro.core.allocation import AllocationProblem, AllocationResult, solve_allocation
from repro.core.demand import DemandEstimator
from repro.errors import ConfigurationError, InfeasibleError, SolverError
from repro.perf.cache import AllocationCache, profile_fingerprint
from repro.runtimes.registry import RuntimeRegistry
from repro.units import SECOND


@dataclass(frozen=True)
class SolverIncident:
    """One survived solver failure: when, why, what was held."""

    time_ms: float
    error: str
    held_allocation: tuple[int, ...]


@dataclass(frozen=True)
class RuntimeSchedulerConfig:
    """Runtime Scheduler knobs (paper default period: 120 s)."""

    period_ms: float = 120 * SECOND
    solver: str = "auto"
    replacement_batch_size: int = 2
    #: Memoize solved allocations by canonical demand (see repro.perf.cache).
    enable_cache: bool = True
    #: Seed the solver with the previous allocation / nearest cached one.
    warm_start: bool = True
    #: Cache entries expire after this many decision periods.
    cache_ttl_periods: float = 8.0
    cache_max_entries: int = 128

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ConfigurationError("period must be positive")
        if self.replacement_batch_size < 1:
            raise ConfigurationError("replacement batch size must be >= 1")
        if self.cache_ttl_periods <= 0:
            raise ConfigurationError("cache TTL must be positive")
        if self.cache_max_entries < 1:
            raise ConfigurationError("cache needs room for at least one entry")


@dataclass
class RuntimeScheduler:
    """Demand → allocation → replacement plan, once per period."""

    registry: RuntimeRegistry
    estimator: DemandEstimator
    config: RuntimeSchedulerConfig = field(default_factory=RuntimeSchedulerConfig)
    #: History of (time, demand, allocation) decisions, for Fig. 12.
    history: list[tuple[float, np.ndarray, np.ndarray]] = field(default_factory=list)
    #: Survived solver failures (graceful degradation, see :meth:`step`).
    incidents: list[SolverIncident] = field(default_factory=list)
    #: Count of periods served by the hold-allocation fallback.
    solver_fallbacks: int = 0
    #: Pending injected failures (chaos testing), see
    #: :meth:`inject_solver_failures`.
    _forced_failures: int = field(default=0, repr=False)
    #: Memoized solves (None when disabled by config).
    cache: AllocationCache | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.config.enable_cache and self.cache is None:
            self.cache = AllocationCache(
                ttl_ms=self.config.cache_ttl_periods * self.config.period_ms,
                max_entries=self.config.cache_max_entries,
            )

    def inject_solver_failures(self, count: int = 1) -> None:
        """Make the next ``count`` solves raise (fault injection)."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        self._forced_failures += count

    def invalidate_cache(self) -> int:
        """Drop memoized solves (profile/fleet change hook). Returns count.

        Budget and profile changes already miss naturally (both are in
        the cache key); this is the explicit escape hatch for anything
        else an operator believes stale.
        """
        return self.cache.invalidate() if self.cache is not None else 0

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters (empty dict when caching is off)."""
        return self.cache.stats() if self.cache is not None else {}

    def _warm_seed(
        self,
        now_ms: float,
        num_gpus: int,
        fingerprint: str | None,
        demand: np.ndarray,
    ) -> np.ndarray | None:
        """Pick a warm-start allocation: last period's, else nearest cached.

        Seeds are *candidates* — the solver validates feasibility against
        the current problem and silently ignores unusable ones.
        """
        if not self.config.warm_start:
            return None
        if self.history:
            prev = self.history[-1][2]
            if prev.size == demand.size and int(prev.sum()) == num_gpus:
                return prev
        if self.cache is not None and fingerprint is not None:
            return self.cache.nearest(now_ms, num_gpus, fingerprint, demand)
        return None

    def decide(self, now_ms: float, num_gpus: int) -> AllocationResult:
        """Solve the allocation for the current demand estimate.

        Falls back to relaxed Eq. 3 bounds when demand outstrips the
        provisioned GPUs (the autoscaler, not this solver, fixes
        sustained overload).

        With caching enabled, an exact (demand, budget, profiles,
        solver) match replays the memoized result — solvers are
        deterministic, so the replay is what a fresh solve would have
        returned. Misses are solved warm-started from the previous
        period's allocation (or the cache's nearest neighbour) and then
        memoized. The cache key uses ``relax=False`` regardless of
        whether the relaxed fallback triggered: the strict→relaxed
        ladder is itself a deterministic function of the problem, and
        the stored result records its ``relaxed`` provenance.
        """
        if self._forced_failures > 0:
            self._forced_failures -= 1
            raise SolverError("injected solver failure (fault plan)")
        demand = self.estimator.demand(now_ms)
        problem = AllocationProblem.from_profiles(
            num_gpus=num_gpus, demand=demand, profiles=list(self.registry)
        )
        fingerprint = key = None
        if self.cache is not None:
            fingerprint = profile_fingerprint(
                problem.capacity, problem.service_ms, problem.overhead_ms
            )
            key = AllocationCache.key_for(
                demand, num_gpus, fingerprint, self.config.solver, False
            )
            entry = self.cache.lookup(now_ms, key)
            if entry is not None:
                result = replace(
                    entry.result,
                    allocation=entry.result.allocation.copy(),
                    stats={**entry.result.stats, "cache_hit": True},
                )
                self.history.append((now_ms, demand, result.allocation.copy()))
                return result
        warm = self._warm_seed(now_ms, num_gpus, fingerprint, demand)
        try:
            result = solve_allocation(
                problem, method=self.config.solver, warm_start=warm
            )
        except InfeasibleError:
            result = solve_allocation(
                problem, method=self.config.solver, relax=True, warm_start=warm
            )
        if self.cache is not None:
            self.cache.store(now_ms, key, num_gpus, fingerprint, demand, result)
        self.history.append((now_ms, demand, result.allocation.copy()))
        return result

    def step(
        self, now_ms: float, state: ClusterState
    ) -> tuple[AllocationResult, ReplacementPlan]:
        """One scheduling period: decide and plan the deployment change.

        The allocation is solved for the instances currently deployable
        (active instances), since GPUs amid replacement or draining
        rejoin through their own lifecycle.
        """
        deployable = int(state.allocation().sum())
        if deployable < 1:
            raise ConfigurationError("cluster has no active instances")
        if self.estimator.observed == 0:
            # Zero demand makes every allocation optimal (cost 0); keep
            # the current deployment instead of churning replacements
            # toward an arbitrary tie-broken optimum.
            return self._hold(now_ms, state, solver="hold")
        try:
            result = self.decide(now_ms, deployable)
        except SolverError as exc:
            # Graceful degradation: a broken control plane must never
            # take the data plane down. Keep serving on the previous
            # allocation and record the incident for the operators.
            self.solver_fallbacks += 1
            self.incidents.append(SolverIncident(
                time_ms=now_ms,
                error=f"{type(exc).__name__}: {exc}",
                held_allocation=tuple(int(n) for n in state.allocation()),
            ))
            return self._hold(now_ms, state, solver="fallback-hold")
        plan = plan_replacement(
            state, result.allocation, batch_size=self.config.replacement_batch_size
        )
        return result, plan

    def _hold(
        self, now_ms: float, state: ClusterState, solver: str
    ) -> tuple[AllocationResult, ReplacementPlan]:
        """Keep the current deployment (zero demand or solver failure)."""
        current = state.allocation()
        result = AllocationResult(
            allocation=current,
            objective=0.0,
            solver=solver,
            solve_time_s=0.0,
        )
        self.history.append(
            (now_ms, self.estimator.demand(now_ms), current.copy())
        )
        return result, plan_replacement(state, current)

    @staticmethod
    def provenance_of(result: AllocationResult) -> str:
        """How an allocation was obtained, for the control timeline.

        One of ``hold`` / ``fallback-hold`` (no solve ran),
        ``cache-hit`` (memoized), ``warm-start`` (B&B seeded from a
        neighbouring solve), or ``cold`` (full solve from scratch).
        """
        if result.solver in ("hold", "fallback-hold"):
            return result.solver
        if result.stats.get("cache_hit"):
            return "cache-hit"
        if result.stats.get("warm_started"):
            return "warm-start"
        return "cold"

    def allocation_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, allocations) from the decision history (Fig. 12 series)."""
        if not self.history:
            return np.empty(0), np.empty((0, len(self.registry)), dtype=np.int64)
        times = np.array([h[0] for h in self.history])
        allocs = np.stack([h[2] for h in self.history])
        return times, allocs
