"""The periodic Runtime Scheduler (§3.3).

Every decision period (120 s by default) the scheduler:

1. reads the demand estimate ``Q`` from the :class:`DemandEstimator`;
2. solves Eqs. 1–7 for the optimal allocation ``N`` given the GPUs
   currently provisioned;
3. emits a minimal-change :class:`ReplacementPlan` moving the cluster
   from its current deployment to ``N``.

It owns no clock — the simulator (or a real control loop) calls
:meth:`RuntimeScheduler.step` on its schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.replacement import ReplacementPlan, plan_replacement
from repro.cluster.state import ClusterState
from repro.core.allocation import AllocationProblem, AllocationResult, solve_allocation
from repro.core.demand import DemandEstimator
from repro.errors import ConfigurationError, InfeasibleError, SolverError
from repro.runtimes.registry import RuntimeRegistry
from repro.units import SECOND


@dataclass(frozen=True)
class SolverIncident:
    """One survived solver failure: when, why, what was held."""

    time_ms: float
    error: str
    held_allocation: tuple[int, ...]


@dataclass(frozen=True)
class RuntimeSchedulerConfig:
    """Runtime Scheduler knobs (paper default period: 120 s)."""

    period_ms: float = 120 * SECOND
    solver: str = "auto"
    replacement_batch_size: int = 2

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ConfigurationError("period must be positive")
        if self.replacement_batch_size < 1:
            raise ConfigurationError("replacement batch size must be >= 1")


@dataclass
class RuntimeScheduler:
    """Demand → allocation → replacement plan, once per period."""

    registry: RuntimeRegistry
    estimator: DemandEstimator
    config: RuntimeSchedulerConfig = field(default_factory=RuntimeSchedulerConfig)
    #: History of (time, demand, allocation) decisions, for Fig. 12.
    history: list[tuple[float, np.ndarray, np.ndarray]] = field(default_factory=list)
    #: Survived solver failures (graceful degradation, see :meth:`step`).
    incidents: list[SolverIncident] = field(default_factory=list)
    #: Count of periods served by the hold-allocation fallback.
    solver_fallbacks: int = 0
    #: Pending injected failures (chaos testing), see
    #: :meth:`inject_solver_failures`.
    _forced_failures: int = field(default=0, repr=False)

    def inject_solver_failures(self, count: int = 1) -> None:
        """Make the next ``count`` solves raise (fault injection)."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        self._forced_failures += count

    def decide(self, now_ms: float, num_gpus: int) -> AllocationResult:
        """Solve the allocation for the current demand estimate.

        Falls back to relaxed Eq. 3 bounds when demand outstrips the
        provisioned GPUs (the autoscaler, not this solver, fixes
        sustained overload).
        """
        if self._forced_failures > 0:
            self._forced_failures -= 1
            raise SolverError("injected solver failure (fault plan)")
        demand = self.estimator.demand(now_ms)
        problem = AllocationProblem.from_profiles(
            num_gpus=num_gpus, demand=demand, profiles=list(self.registry)
        )
        try:
            result = solve_allocation(problem, method=self.config.solver)
        except InfeasibleError:
            result = solve_allocation(
                problem, method=self.config.solver, relax=True
            )
        self.history.append((now_ms, demand, result.allocation.copy()))
        return result

    def step(
        self, now_ms: float, state: ClusterState
    ) -> tuple[AllocationResult, ReplacementPlan]:
        """One scheduling period: decide and plan the deployment change.

        The allocation is solved for the instances currently deployable
        (active instances), since GPUs amid replacement or draining
        rejoin through their own lifecycle.
        """
        deployable = int(state.allocation().sum())
        if deployable < 1:
            raise ConfigurationError("cluster has no active instances")
        if self.estimator.observed == 0:
            # Zero demand makes every allocation optimal (cost 0); keep
            # the current deployment instead of churning replacements
            # toward an arbitrary tie-broken optimum.
            return self._hold(now_ms, state, solver="hold")
        try:
            result = self.decide(now_ms, deployable)
        except SolverError as exc:
            # Graceful degradation: a broken control plane must never
            # take the data plane down. Keep serving on the previous
            # allocation and record the incident for the operators.
            self.solver_fallbacks += 1
            self.incidents.append(SolverIncident(
                time_ms=now_ms,
                error=f"{type(exc).__name__}: {exc}",
                held_allocation=tuple(int(n) for n in state.allocation()),
            ))
            return self._hold(now_ms, state, solver="fallback-hold")
        plan = plan_replacement(
            state, result.allocation, batch_size=self.config.replacement_batch_size
        )
        return result, plan

    def _hold(
        self, now_ms: float, state: ClusterState, solver: str
    ) -> tuple[AllocationResult, ReplacementPlan]:
        """Keep the current deployment (zero demand or solver failure)."""
        current = state.allocation()
        result = AllocationResult(
            allocation=current,
            objective=0.0,
            solver=solver,
            solve_time_s=0.0,
        )
        self.history.append(
            (now_ms, self.estimator.demand(now_ms), current.copy())
        )
        return result, plan_replacement(state, current)

    def allocation_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, allocations) from the decision history (Fig. 12 series)."""
        if not self.history:
            return np.empty(0), np.empty((0, len(self.registry)), dtype=np.int64)
        times = np.array([h[0] for h in self.history])
        allocs = np.stack([h[2] for h in self.history])
        return times, allocs
