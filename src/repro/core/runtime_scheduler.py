"""The periodic Runtime Scheduler (§3.3).

Every decision period (120 s by default) the scheduler:

1. reads the demand estimate ``Q`` from the :class:`DemandEstimator`;
2. solves Eqs. 1–7 for the optimal allocation ``N`` given the GPUs
   currently provisioned;
3. emits a minimal-change :class:`ReplacementPlan` moving the cluster
   from its current deployment to ``N``.

It owns no clock — the simulator (or a real control loop) calls
:meth:`RuntimeScheduler.step` on its schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.replacement import ReplacementPlan, plan_replacement
from repro.cluster.state import ClusterState
from repro.core.allocation import AllocationProblem, AllocationResult, solve_allocation
from repro.core.demand import DemandEstimator
from repro.core.pool_split import PoolSplit, PoolSplitConfig, solve_pool_split
from repro.errors import ConfigurationError, InfeasibleError, SolverError
from repro.perf.anytime import resolve_ladder, solve_anytime
from repro.perf.cache import AllocationCache, profile_fingerprint
from repro.perf.forecast import DemandForecaster
from repro.runtimes.registry import RuntimeRegistry
from repro.units import SECOND


@dataclass(frozen=True)
class SolverIncident:
    """One survived solver failure: when, why, what was held."""

    time_ms: float
    error: str
    held_allocation: tuple[int, ...]


@dataclass(frozen=True)
class RuntimeSchedulerConfig:
    """Runtime Scheduler knobs (paper default period: 120 s)."""

    period_ms: float = 120 * SECOND
    solver: str = "auto"
    replacement_batch_size: int = 2
    #: Memoize solved allocations by canonical demand (see repro.perf.cache).
    enable_cache: bool = True
    #: Seed the solver with the previous allocation / nearest cached one.
    warm_start: bool = True
    #: Cache entries expire after this many decision periods.
    cache_ttl_periods: float = 8.0
    cache_max_entries: int = 128
    #: Solve through the deadline-bounded anytime ladder
    #: (:mod:`repro.perf.anytime`) instead of a single solver.
    solver_ladder: bool = False
    #: Wall-clock budget per ladder solve (and per pre-solve).
    solve_deadline_ms: float = 50.0
    #: Rung names for the ladder; None uses the registry default.
    ladder_rungs: tuple[str, ...] | None = None
    #: Approximate cache hits (ladder mode only): accept a cached
    #: allocation whose demand is within this relative L1 distance of
    #: the live one, after re-checking feasibility and re-evaluating
    #: the objective. 0 disables approximate matching.
    cache_tolerance: float = 0.02
    #: Forecast next period's demand and pre-solve it into the cache.
    forecast: bool = False
    #: EWMA level smoothing for the forecaster.
    forecast_alpha: float = 0.35
    #: Seasonal cycle length in periods (0 = no seasonal component).
    forecast_season: int = 0

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ConfigurationError("period must be positive")
        if self.replacement_batch_size < 1:
            raise ConfigurationError("replacement batch size must be >= 1")
        if self.cache_ttl_periods <= 0:
            raise ConfigurationError("cache TTL must be positive")
        if self.cache_max_entries < 1:
            raise ConfigurationError("cache needs room for at least one entry")
        if self.solve_deadline_ms <= 0:
            raise ConfigurationError("solve deadline must be positive")
        if self.cache_tolerance < 0:
            raise ConfigurationError("cache tolerance cannot be negative")
        if self.ladder_rungs is not None:
            resolve_ladder(self.ladder_rungs)  # validate names eagerly
        if self.forecast and not self.solver_ladder:
            raise ConfigurationError(
                "forecast pre-solving requires solver_ladder=True "
                "(pre-solves run through the deadline-bounded ladder)"
            )
        if self.forecast and not self.enable_cache:
            raise ConfigurationError(
                "forecast pre-solving is pointless without the allocation "
                "cache — enable_cache=True is required"
            )


@dataclass
class RuntimeScheduler:
    """Demand → allocation → replacement plan, once per period."""

    registry: RuntimeRegistry
    estimator: DemandEstimator
    config: RuntimeSchedulerConfig = field(default_factory=RuntimeSchedulerConfig)
    #: History of (time, demand, allocation) decisions, for Fig. 12.
    history: list[tuple[float, np.ndarray, np.ndarray]] = field(default_factory=list)
    #: Survived solver failures (graceful degradation, see :meth:`step`).
    incidents: list[SolverIncident] = field(default_factory=list)
    #: Count of periods served by the hold-allocation fallback.
    solver_fallbacks: int = 0
    #: Pending injected failures (chaos testing), see
    #: :meth:`inject_solver_failures`.
    _forced_failures: int = field(default=0, repr=False)
    #: Memoized solves (None when disabled by config).
    cache: AllocationCache | None = field(default=None, repr=False)
    #: Demand forecaster driving pre-solves (None unless config.forecast).
    forecaster: DemandForecaster | None = field(default=None, repr=False)
    #: Anytime-mode counters; see :meth:`anytime_stats`.
    _anytime: dict = field(default_factory=dict, repr=False)
    #: Per-period decide wall times in ladder mode (ms), for tail stats.
    solve_ms_history: list[float] = field(default_factory=list, repr=False)
    #: Detail of the most recent pre-solve attempt (sim timeline hook).
    last_presolve: dict | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.config.enable_cache and self.cache is None:
            self.cache = AllocationCache(
                ttl_ms=self.config.cache_ttl_periods * self.config.period_ms,
                max_entries=self.config.cache_max_entries,
            )
        if self.config.forecast and self.forecaster is None:
            self.forecaster = DemandForecaster(
                num_bins=len(self.registry),
                alpha=self.config.forecast_alpha,
                season_length=self.config.forecast_season,
            )
        if self.config.solver_ladder:
            self._anytime = {
                "periods": 0,
                "boundary_exact_hits": 0,
                "boundary_approx_hits": 0,
                "boundary_forecast_hits": 0,
                "solves": 0,
                "deadline_hits": 0,
                "deadline_misses": 0,
                "presolves": 0,
                "presolve_covered": 0,
                "presolve_failures": 0,
            }

    def inject_solver_failures(self, count: int = 1) -> None:
        """Make the next ``count`` solves raise (fault injection)."""
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        self._forced_failures += count

    def invalidate_cache(self) -> int:
        """Drop memoized solves (profile/fleet change hook). Returns count.

        Budget and profile changes already miss naturally (both are in
        the cache key); this is the explicit escape hatch for anything
        else an operator believes stale.
        """
        return self.cache.invalidate() if self.cache is not None else 0

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters (empty dict when caching is off)."""
        return self.cache.stats() if self.cache is not None else {}

    def _warm_seed(
        self,
        now_ms: float,
        num_gpus: int,
        fingerprint: str | None,
        demand: np.ndarray,
    ) -> np.ndarray | None:
        """Pick a warm-start allocation: last period's, else nearest cached.

        Seeds are *candidates* — the solver validates feasibility against
        the current problem and silently ignores unusable ones.
        """
        if not self.config.warm_start:
            return None
        if self.history:
            prev = self.history[-1][2]
            if prev.size == demand.size and int(prev.sum()) == num_gpus:
                return prev
        if self.cache is not None and fingerprint is not None:
            return self.cache.nearest(now_ms, num_gpus, fingerprint, demand)
        return None

    def decide(self, now_ms: float, num_gpus: int) -> AllocationResult:
        """Solve the allocation for the current demand estimate.

        Falls back to relaxed Eq. 3 bounds when demand outstrips the
        provisioned GPUs (the autoscaler, not this solver, fixes
        sustained overload).

        With caching enabled, an exact (demand, budget, profiles,
        solver) match replays the memoized result — solvers are
        deterministic, so the replay is what a fresh solve would have
        returned. Misses are solved warm-started from the previous
        period's allocation (or the cache's nearest neighbour) and then
        memoized. The cache key uses ``relax=False`` regardless of
        whether the relaxed fallback triggered: the strict→relaxed
        ladder is itself a deterministic function of the problem, and
        the stored result records its ``relaxed`` provenance.
        """
        if self._forced_failures > 0:
            self._forced_failures -= 1
            raise SolverError("injected solver failure (fault plan)")
        if self.config.solver_ladder:
            return self._decide_anytime(now_ms, num_gpus)
        demand = self.estimator.demand(now_ms)
        problem = AllocationProblem.from_profiles(
            num_gpus=num_gpus, demand=demand, profiles=list(self.registry)
        )
        fingerprint = key = None
        if self.cache is not None:
            fingerprint = profile_fingerprint(
                problem.capacity, problem.service_ms, problem.overhead_ms
            )
            key = AllocationCache.key_for(
                demand, num_gpus, fingerprint, self.config.solver, False
            )
            entry = self.cache.lookup(now_ms, key)
            if entry is not None:
                result = replace(
                    entry.result,
                    allocation=entry.result.allocation.copy(),
                    stats={**entry.result.stats, "cache_hit": True},
                )
                self.history.append((now_ms, demand, result.allocation.copy()))
                return result
        warm = self._warm_seed(now_ms, num_gpus, fingerprint, demand)
        try:
            result = solve_allocation(
                problem, method=self.config.solver, warm_start=warm
            )
        except InfeasibleError:
            result = solve_allocation(
                problem, method=self.config.solver, relax=True, warm_start=warm
            )
        if self.cache is not None:
            self.cache.store(now_ms, key, num_gpus, fingerprint, demand, result)
        self.history.append((now_ms, demand, result.allocation.copy()))
        return result

    def _decide_anytime(self, now_ms: float, num_gpus: int) -> AllocationResult:
        """Ladder-mode decide: cache (exact → approximate) → budgeted climb.

        Every period boundary resolves in one of three ways, cheapest
        first:

        1. **exact hit** — canonical demand matches a cached solve
           (possibly one the forecaster pre-solved) byte-for-byte;
        2. **approximate hit** — a cached allocation for a demand within
           ``cache_tolerance`` relative L1 distance, accepted only after
           re-checking Eq. 2/3/7 feasibility against the *live* problem
           and re-evaluating the objective on it;
        3. **anytime solve** — :func:`repro.perf.anytime.solve_anytime`
           under ``solve_deadline_ms``, warm-started from the previous
           allocation or the nearest cached neighbour.

        The realized demand is always fed to the forecaster first, so
        pre-solves chase the drift rather than lag it.
        """
        t0 = time.perf_counter()
        stats = self._anytime
        stats["periods"] += 1
        demand = self.estimator.demand(now_ms)
        if self.forecaster is not None:
            self.forecaster.observe(demand)
        problem = AllocationProblem.from_profiles(
            num_gpus=num_gpus, demand=demand, profiles=list(self.registry)
        )
        fingerprint = key = None
        if self.cache is not None:
            fingerprint = profile_fingerprint(
                problem.capacity, problem.service_ms, problem.overhead_ms
            )
            key = AllocationCache.key_for(
                demand, num_gpus, fingerprint, "anytime", False
            )
            entry = self.cache.lookup(now_ms, key)
            if entry is not None:
                stats["boundary_exact_hits"] += 1
                if entry.result.stats.get("presolved"):
                    stats["boundary_forecast_hits"] += 1
                result = replace(
                    entry.result,
                    allocation=entry.result.allocation.copy(),
                    stats={**entry.result.stats, "cache_hit": True},
                )
                self.history.append((now_ms, demand, result.allocation.copy()))
                self.solve_ms_history.append((time.perf_counter() - t0) * 1e3)
                return result
            if self.config.cache_tolerance > 0:
                near = self.cache.nearest_within(
                    now_ms, num_gpus, fingerprint, demand,
                    tolerance=self.config.cache_tolerance, method="anytime",
                )
                if near is not None and problem.is_feasible(
                    near.result.allocation, relaxed=near.result.relaxed
                ):
                    stats["boundary_approx_hits"] += 1
                    if near.result.stats.get("presolved"):
                        stats["boundary_forecast_hits"] += 1
                    allocation = near.result.allocation.copy()
                    # The cached optimum was for a *nearby* demand:
                    # re-evaluate against the live cascade so reported
                    # objectives are honest.
                    result = replace(
                        near.result,
                        allocation=allocation,
                        objective=problem.evaluate(allocation),
                        stats={
                            **near.result.stats,
                            "cache_hit": True,
                            "approx_hit": True,
                        },
                    )
                    self.history.append((now_ms, demand, allocation.copy()))
                    self.solve_ms_history.append((time.perf_counter() - t0) * 1e3)
                    return result
        warm = self._warm_seed(now_ms, num_gpus, fingerprint, demand)
        deadline_s = self.config.solve_deadline_ms / 1e3
        try:
            result = solve_anytime(
                problem, deadline_s=deadline_s,
                ladder=self.config.ladder_rungs, warm_start=warm,
            )
        except InfeasibleError:
            result = solve_anytime(
                problem, deadline_s=deadline_s,
                ladder=self.config.ladder_rungs, relax=True, warm_start=warm,
            )
        stats["solves"] += 1
        if result.stats.get("deadline_hit"):
            stats["deadline_hits"] += 1
        else:
            stats["deadline_misses"] += 1
        if self.cache is not None:
            self.cache.store(now_ms, key, num_gpus, fingerprint, demand, result)
        self.history.append((now_ms, demand, result.allocation.copy()))
        self.solve_ms_history.append((time.perf_counter() - t0) * 1e3)
        return result

    def decide_pool_split(
        self,
        now_ms: float,
        total_gpus: int,
        *,
        decode_occupancy: float,
        decode_slots_per_gpu: float,
        split_config: PoolSplitConfig | None = None,
    ) -> tuple[PoolSplit, str] | None:
        """Solve the coupled prefill/decode allocation for one period.

        The disaggregated data plane's generalization of :meth:`decide`
        (Arrow, arxiv 2505.11916): split the GPU budget across the two
        pools, then allocate the prefill pool's share over the runtime
        staircase. The outer split is the deterministic greedy scan of
        :func:`repro.core.pool_split.solve_pool_split` driven by the
        prompt-demand estimate plus the live decode-occupancy signal;
        when the demand forecaster is on, the split is planned against
        the *predicted* next-period demand (the split takes effect over
        the coming period, so chasing the forecast beats lagging the
        estimate — same solve-ahead idea as :meth:`presolve_forecast`).

        With ``solver_ladder=True`` the chosen split's prefill
        allocation is refined by the deadline-bounded anytime ladder,
        warm-started from the scan's allocation; refinement never
        changes the split itself, so the outer loop stays
        wall-clock-free and bit-deterministic.

        Returns ``(split, provenance)``, or ``None`` before any demand
        has been observed (the caller holds the current pool roles —
        the same zero-demand hold as :meth:`step`). Injected solver
        failures raise :class:`SolverError` exactly as :meth:`decide`
        does, so chaos plans exercise the disagg hold path too.
        """
        if self._forced_failures > 0:
            self._forced_failures -= 1
            raise SolverError("injected solver failure (fault plan)")
        if self.estimator.observed == 0:
            return None
        demand = self.estimator.demand(now_ms)
        provenance = "greedy-scan"
        plan_demand = demand
        if self.forecaster is not None:
            self.forecaster.observe(demand)
            predicted = self.forecaster.predict()
            if predicted is not None:
                plan_demand = predicted
                provenance = "greedy-scan+forecast"
        problem = AllocationProblem.from_profiles(
            num_gpus=total_gpus, demand=plan_demand,
            profiles=list(self.registry),
        )
        split = solve_pool_split(
            problem,
            decode_occupancy=decode_occupancy,
            decode_slots_per_gpu=decode_slots_per_gpu,
            config=split_config,
        )
        if self.config.solver_ladder:
            sub = replace(problem, num_gpus=split.prefill_gpus)
            try:
                refined = solve_anytime(
                    sub,
                    deadline_s=self.config.solve_deadline_ms / 1e3,
                    ladder=self.config.ladder_rungs,
                    relax=split.relaxed,
                    warm_start=split.prefill_allocation,
                )
            except (SolverError, InfeasibleError):
                refined = None
            if (
                refined is not None
                and refined.objective <= split.prefill_objective
                and sub.is_feasible(refined.allocation,
                                    relaxed=split.relaxed)
            ):
                split = replace(
                    split,
                    prefill_allocation=refined.allocation,
                    prefill_objective=refined.objective,
                    solver="greedy-scan+anytime",
                )
                provenance += f"+anytime-{refined.stats.get('rung', '?')}"
        self.history.append(
            (now_ms, plan_demand, split.prefill_allocation.copy())
        )
        return split, provenance

    def presolve_forecast(self, now_ms: float, num_gpus: int) -> dict | None:
        """Pre-solve the forecast next-period demand into the cache.

        The idle-time half of the anytime control plane (the Shockwave
        ``future_nrounds`` idea): between period boundaries, predict the
        next demand vector and run the same budgeted ladder on it, so
        the boundary finds a warm entry even on genuinely new demand.
        Skipped when the prediction is already covered (exactly or
        within ``cache_tolerance``). Failures are swallowed into a
        counter — a broken pre-solve must never surface at a boundary.

        Returns a detail dict (also kept as :attr:`last_presolve`) or
        None when forecasting is disabled / no prediction exists yet.
        """
        self.last_presolve = None
        if self.forecaster is None or self.cache is None:
            return None
        predicted = self.forecaster.predict()
        if predicted is None:
            return None
        detail: dict = {"time_ms": now_ms}
        profiles = list(self.registry)
        problem = AllocationProblem.from_profiles(
            num_gpus=num_gpus, demand=predicted, profiles=profiles
        )
        fingerprint = profile_fingerprint(
            problem.capacity, problem.service_ms, problem.overhead_ms
        )
        key = AllocationCache.key_for(
            predicted, num_gpus, fingerprint, "anytime", False
        )
        covered = self.cache.contains(now_ms, key)
        if not covered and self.config.cache_tolerance > 0:
            # Skip only when an entry sits well *inside* tolerance
            # (half of it): the realized demand lands near the
            # prediction, not on it, and an entry at the tolerance edge
            # for the prediction is a coin-flip for the boundary.
            covered = (
                self.cache.nearest_within(
                    now_ms, num_gpus, fingerprint, predicted,
                    tolerance=self.config.cache_tolerance / 2.0,
                    method="anytime", record=False,
                )
                is not None
            )
        if covered:
            self._anytime["presolve_covered"] += 1
            detail.update(outcome="covered")
            self.last_presolve = detail
            return detail
        warm = self._warm_seed(now_ms, num_gpus, fingerprint, predicted)
        try:
            result = solve_anytime(
                problem,
                deadline_s=self.config.solve_deadline_ms / 1e3,
                ladder=self.config.ladder_rungs,
                warm_start=warm,
            )
        except SolverError as exc:
            self._anytime["presolve_failures"] += 1
            detail.update(outcome="failed", error=f"{type(exc).__name__}: {exc}")
            self.last_presolve = detail
            return detail
        stored = replace(
            result,
            allocation=result.allocation.copy(),
            stats={**result.stats, "presolved": True},
        )
        self.cache.store(now_ms, key, num_gpus, fingerprint, predicted, stored)
        self._anytime["presolves"] += 1
        detail.update(
            outcome="stored",
            rung=result.stats.get("rung"),
            elapsed_ms=result.stats.get("elapsed_ms"),
            deadline_hit=result.stats.get("deadline_hit"),
        )
        self.last_presolve = detail
        return detail

    def anytime_stats(self) -> dict:
        """Ladder-mode counters (empty dict outside ladder mode).

        ``boundary_hit_rate`` counts period boundaries resolved from
        cache (exact or approximate) out of all ladder periods;
        ``deadline_hit_rate`` counts boundaries resolved within the
        deadline — cache hits trivially, solves by measured wall clock.
        """
        if not self._anytime:
            return {}
        out = dict(self._anytime)
        periods = out["periods"]
        hits = out["boundary_exact_hits"] + out["boundary_approx_hits"]
        out["boundary_hit_rate"] = hits / periods if periods else 0.0
        out["deadline_hit_rate"] = (
            (hits + out["deadline_hits"]) / periods if periods else 0.0
        )
        if self.forecaster is not None:
            out["forecast"] = self.forecaster.error_stats()
        return out

    def step(
        self, now_ms: float, state: ClusterState
    ) -> tuple[AllocationResult, ReplacementPlan]:
        """One scheduling period: decide and plan the deployment change.

        The allocation is solved for the instances currently deployable
        (active instances), since GPUs amid replacement or draining
        rejoin through their own lifecycle.
        """
        deployable = int(state.allocation().sum())
        if deployable < 1:
            raise ConfigurationError("cluster has no active instances")
        if self.estimator.observed == 0:
            # Zero demand makes every allocation optimal (cost 0); keep
            # the current deployment instead of churning replacements
            # toward an arbitrary tie-broken optimum.
            return self._hold(now_ms, state, solver="hold")
        try:
            result = self.decide(now_ms, deployable)
        except SolverError as exc:
            # Graceful degradation: a broken control plane must never
            # take the data plane down. Keep serving on the previous
            # allocation and record the incident for the operators.
            self.solver_fallbacks += 1
            self.incidents.append(SolverIncident(
                time_ms=now_ms,
                error=f"{type(exc).__name__}: {exc}",
                held_allocation=tuple(int(n) for n in state.allocation()),
            ))
            return self._hold(now_ms, state, solver="fallback-hold")
        plan = plan_replacement(
            state, result.allocation, batch_size=self.config.replacement_batch_size
        )
        if self.config.forecast:
            # Idle-time solve-ahead: the boundary work is done, so spend
            # (budgeted) time making the *next* boundary a cache hit.
            self.presolve_forecast(now_ms, deployable)
        return result, plan

    def _hold(
        self, now_ms: float, state: ClusterState, solver: str
    ) -> tuple[AllocationResult, ReplacementPlan]:
        """Keep the current deployment (zero demand or solver failure)."""
        current = state.allocation()
        result = AllocationResult(
            allocation=current,
            objective=0.0,
            solver=solver,
            solve_time_s=0.0,
        )
        self.history.append(
            (now_ms, self.estimator.demand(now_ms), current.copy())
        )
        return result, plan_replacement(state, current)

    @staticmethod
    def provenance_of(result: AllocationResult) -> str:
        """How an allocation was obtained, for the control timeline.

        One of ``hold`` / ``fallback-hold`` (no solve ran),
        ``cache-hit`` (memoized), ``warm-start`` (B&B seeded from a
        neighbouring solve), or ``cold`` (full solve from scratch).

        Ladder-mode results refine the taxonomy: ``forecast-hit`` (the
        entry was pre-solved from a forecast), ``approx-hit`` (cached
        allocation within demand tolerance, re-validated), and
        ``anytime-<rung>`` (budgeted climb; the rung names which level
        produced the incumbent).
        """
        if result.solver in ("hold", "fallback-hold"):
            return result.solver
        if result.stats.get("cache_hit"):
            if result.stats.get("presolved"):
                return "forecast-hit"
            if result.stats.get("approx_hit"):
                return "approx-hit"
            return "cache-hit"
        if result.solver == "anytime":
            return f"anytime-{result.stats.get('rung', 'unknown')}"
        if result.stats.get("warm_started"):
            return "warm-start"
        return "cold"

    def allocation_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, allocations) from the decision history (Fig. 12 series)."""
        if not self.history:
            return np.empty(0), np.empty((0, len(self.registry)), dtype=np.int64)
        times = np.array([h[0] for h in self.history])
        allocs = np.stack([h[2] for h in self.history])
        return times, allocs
