"""The multi-level queue maintained by the Request Scheduler (Fig. 5).

One level per runtime, ordered by increasing ``max_length``. Within a
level, a priority queue keeps the instance with the least outstanding
work at the head. Instance load changes constantly (every enqueue and
completion), so the heap uses *lazy invalidation*: every entry carries
the instance's epoch counter at push time, and stale entries are
discarded on pop. This keeps head queries O(log n) amortised — the
property behind the paper's O(L) + O(log(N/K)) dispatch complexity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.cluster.instance import InstanceStatus, RuntimeInstance
from repro.errors import SchedulingError

_ACTIVE = InstanceStatus.ACTIVE


@dataclass
class InstanceHeap:
    """Min-heap of instances keyed by outstanding load, lazily updated.

    Alongside the heap, the level maintains O(1) congestion aggregates
    (``outstanding_total``, ``capacity_total``) through the same
    add/remove/refresh calls that keep the heap fresh, so the dispatch
    walk can read a level's congestion without touching its members.
    """

    _heap: list[tuple[int, int, int, RuntimeInstance]] = field(default_factory=list)
    _members: dict[int, RuntimeInstance] = field(default_factory=dict)
    _counter: itertools.count = field(default_factory=itertools.count)
    #: Σ outstanding over members, as of their last add/refresh.
    outstanding_total: int = 0
    #: Σ capacity (M_i) over members.
    capacity_total: int = 0
    _last_outstanding: dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._members)

    def add(self, instance: RuntimeInstance) -> None:
        if instance.instance_id in self._members:
            raise SchedulingError(
                f"instance {instance.instance_id} already in this level"
            )
        self._members[instance.instance_id] = instance
        self._last_outstanding[instance.instance_id] = instance.outstanding
        self.outstanding_total += instance.outstanding
        self.capacity_total += instance.capacity
        self._push(instance)

    def remove(self, instance: RuntimeInstance) -> None:
        """Remove an instance (stale heap entries expire lazily)."""
        if self._members.pop(instance.instance_id, None) is None:
            raise SchedulingError(
                f"instance {instance.instance_id} not in this level"
            )
        self.outstanding_total -= self._last_outstanding.pop(instance.instance_id)
        self.capacity_total -= instance.capacity

    def refresh(self, instance: RuntimeInstance) -> None:
        """Re-key an instance after its load changed.

        Runs twice per simulated request (enqueue + completion), so the
        heap push is fused in rather than delegated to :meth:`_push`,
        and ``_last_outstanding`` doubles as the membership test (its
        keys mirror ``_members`` by construction).
        """
        last = self._last_outstanding
        key = instance.instance_id
        if key in last:
            out = instance.outstanding
            self.outstanding_total += out - last[key]
            last[key] = out
            heappush(
                self._heap,
                (out, next(self._counter), instance._epoch, instance),
            )

    def congestion(self) -> float:
        """Aggregate ``P = Σ outstanding / Σ capacity`` of the level."""
        if self.capacity_total == 0:
            return float("inf") if self.outstanding_total else 0.0
        return self.outstanding_total / self.capacity_total

    def _push(self, instance: RuntimeInstance) -> None:
        heappush(
            self._heap,
            (instance.outstanding, next(self._counter), instance._epoch, instance),
        )

    def head(self) -> RuntimeInstance | None:
        """Least-loaded *active* member, or None when the level is empty.

        Stale entries (superseded by a later ``refresh``, removed, or
        inactive) are simply discarded on pop — never re-pushed. Every
        load change pushes exactly one fresh entry via :meth:`refresh`,
        so each member's newest entry is always present and valid;
        discarding keeps the total work amortised O(log n) per update
        (re-pushing here instead makes dispatch quadratic under deep
        queues).
        """
        members = self._members
        if not members:
            return None  # skip draining stale entries for an empty level
        heap = self._heap
        while heap:
            entry = heap[0]
            instance = entry[3]
            if (
                entry[2] == instance._epoch
                and instance.status is _ACTIVE
                and instance.instance_id in members
            ):
                return instance
            heappop(heap)
        return None

    def instances(self) -> list[RuntimeInstance]:
        return list(self._members.values())


class MultiLevelQueue:
    """Per-runtime instance heaps plus cross-level operations."""

    def __init__(self, num_levels: int):
        if num_levels < 1:
            raise SchedulingError("need at least one level")
        self.levels: list[InstanceHeap] = [InstanceHeap() for _ in range(num_levels)]
        self._level_of: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.levels)

    def add(self, instance: RuntimeInstance) -> None:
        level = instance.runtime_index
        if not 0 <= level < len(self.levels):
            raise SchedulingError(f"instance targets unknown level {level}")
        self.levels[level].add(instance)
        self._level_of[instance.instance_id] = level
        instance._level_heap = self.levels[level]

    def remove(self, instance: RuntimeInstance) -> None:
        level = self._level_of.pop(instance.instance_id, None)
        if level is None:
            raise SchedulingError(
                f"instance {instance.instance_id} is not tracked"
            )
        self.levels[level].remove(instance)
        instance._level_heap = None

    def refresh(self, instance: RuntimeInstance) -> None:
        level = self._level_of.get(instance.instance_id)
        if level is not None:
            self.levels[level].refresh(instance)

    def contains(self, instance: RuntimeInstance) -> bool:
        return instance.instance_id in self._level_of

    def head(self, level: int) -> RuntimeInstance | None:
        return self.levels[level].head()

    def total_instances(self) -> int:
        return sum(len(lvl) for lvl in self.levels)

    def total_outstanding(self) -> int:
        """Σ outstanding over all queued instances — O(levels)."""
        return sum(lvl.outstanding_total for lvl in self.levels)

    def level_outstanding(self, level: int) -> int:
        return self.levels[level].outstanding_total

    def level_congestion(self, level: int) -> float:
        """Aggregate congestion of one level — O(1)."""
        return self.levels[level].congestion()

    def level_stats(self) -> list[dict[str, float]]:
        """Per-level observability snapshot — O(levels).

        One row per level: instance count, aggregate outstanding and
        capacity, and the congestion ratio the Algorithm-1 walk probes.
        """
        return [
            {
                "level": float(level),
                "instances": float(len(heap)),
                "outstanding": float(heap.outstanding_total),
                "capacity": float(heap.capacity_total),
                "congestion": heap.congestion(),
            }
            for level, heap in enumerate(self.levels)
        ]

    def least_loaded(self, levels: range | list[int]) -> RuntimeInstance | None:
        """Globally least-loaded head across the given levels (IG policy)."""
        best: RuntimeInstance | None = None
        for lv in levels:
            head = self.levels[lv].head()
            if head is not None and (
                best is None or head.outstanding < best.outstanding
            ):
                best = head
        return best

    @classmethod
    def from_cluster(cls, state) -> "MultiLevelQueue":
        """Build and populate from a :class:`ClusterState`."""
        mlq = cls(num_levels=len(state.levels))
        for instance in state.instances.values():
            if instance.is_active:
                mlq.add(instance)
        return mlq
