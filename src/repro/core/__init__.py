"""Arlo's core: the polymorphing schedulers (the paper's contribution).

- :mod:`repro.core.bins` — length-span fragmentation (workflow step ①).
- :mod:`repro.core.demand` — request length distribution estimation,
  producing the per-bin demand ``Q_i`` the ILP consumes.
- :mod:`repro.core.allocation` — the Eqs. 1–7 optimisation problem and
  four solvers (exact DP, local search, brute force, MILP validation).
- :mod:`repro.core.runtime_scheduler` — the periodic Runtime Scheduler
  (§3.3): demand → allocation → minimal replacement plan.
- :mod:`repro.core.mlq` — the multi-level queue over runtime instances.
- :mod:`repro.core.request_scheduler` — Algorithm 1 (§3.4).
- :mod:`repro.core.arlo` — the user-facing system facade.
"""

from repro.core.allocation import (
    AllocationProblem,
    AllocationResult,
    solve_allocation,
)
from repro.core.arlo import ArloConfig, ArloSystem
from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import ArloRequestScheduler, RequestSchedulerConfig
from repro.core.runtime_scheduler import RuntimeScheduler, RuntimeSchedulerConfig

__all__ = [
    "AllocationProblem",
    "AllocationResult",
    "ArloConfig",
    "ArloRequestScheduler",
    "ArloSystem",
    "DemandEstimator",
    "LengthBins",
    "MultiLevelQueue",
    "RequestSchedulerConfig",
    "RuntimeScheduler",
    "RuntimeSchedulerConfig",
    "solve_allocation",
]
