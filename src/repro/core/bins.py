"""Length-span fragmentation (paper workflow step ①).

A :class:`LengthBins` maps request lengths to bins whose upper edges
are the polymorph set's ``max_length`` values: bin ``i`` holds the
requests whose *ideal* runtime is runtime ``i``. It is the pure-data
counterpart of :class:`repro.runtimes.registry.RuntimeRegistry` used by
components (demand estimation, trace analytics) that must not depend
on compiled runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError, ConfigurationError


@dataclass(frozen=True)
class LengthBins:
    """Right-closed length bins: bin i covers (edges[i-1], edges[i]]."""

    edges: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=np.int64)
        if edges.ndim != 1 or edges.size == 0:
            raise ConfigurationError("need at least one bin edge")
        if edges[0] <= 0 or np.any(np.diff(edges) <= 0):
            raise ConfigurationError("edges must be positive and increasing")
        edges.setflags(write=False)
        object.__setattr__(self, "edges", edges)
        # length -> bin index table: bin_of runs per observed arrival,
        # so it must not pay a scalar np.searchsorted per call.
        object.__setattr__(
            self,
            "_lookup",
            np.searchsorted(edges, np.arange(int(edges[-1]) + 1),
                            side="left").tolist(),
        )

    @classmethod
    def from_registry(cls, registry) -> "LengthBins":
        """Bins induced by a polymorph set's max_lengths."""
        return cls(edges=registry.bin_edges())

    @classmethod
    def uniform(cls, max_length: int, step: int) -> "LengthBins":
        """Bins at every multiple of ``step`` up to ``max_length``."""
        from repro.runtimes.staircase import polymorph_lengths

        return cls(edges=np.asarray(polymorph_lengths(max_length, step)))

    def __len__(self) -> int:
        return int(self.edges.size)

    @property
    def max_length(self) -> int:
        return int(self.edges[-1])

    def bin_of(self, length: int) -> int:
        """Bin index of a single length — O(1) table lookup."""
        if length <= 0 or length > self.max_length:
            raise CapacityError(f"length {length} outside (0, {self.max_length}]")
        return self._lookup[length]

    def bins_of(self, lengths: np.ndarray) -> np.ndarray:
        """Vectorised bin lookup."""
        lengths = np.asarray(lengths)
        if lengths.size and (lengths.min() <= 0 or lengths.max() > self.max_length):
            raise CapacityError("lengths outside the binned span")
        return np.searchsorted(self.edges, lengths, side="left")

    def histogram(self, lengths: np.ndarray) -> np.ndarray:
        """Requests per bin."""
        return np.bincount(self.bins_of(lengths), minlength=len(self)).astype(
            np.int64
        )
