#!/usr/bin/env python
"""Multi-stream serving (§6): two Arlo deployments sharing a GPU pool.

Co-simulates a BERT-Base stream and a BERT-Large stream over 14 shared
GPUs. The pool coordinator re-partitions every few seconds in
proportion to each stream's measured demand; the BERT-Base stream
carries a mid-trace load surge, and the printout shows GPUs flowing to
it and back.

Run:  python examples/multistream_pool.py [seconds]
"""

import sys

from repro.baselines.schemes import build_scheme
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.multistream import MultiStreamConfig, StreamInput, run_multistream
from repro.units import seconds, to_seconds
from repro.workload.arrivals import PoissonArrivals, RateProfile
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.lengths import LogNormalLengths
from repro.workload.twitter import generate_twitter_trace


def surging_base_trace(duration_s: float):
    """BERT-Base stream: quiet, then a 3× surge, then quiet again."""
    third = seconds(duration_s) / 3
    profile = RateProfile(
        base=PoissonArrivals(),
        segments=((third, 0.6), (third, 3.0), (third, 0.6)),
    )
    lengths = LogNormalLengths.from_quantiles(86, 295, max_length=512)
    return generate_trace(
        WorkloadSpec(lengths=lengths, arrivals=profile, rate_per_s=900,
                     duration_ms=seconds(duration_s), seed=21)
    )


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 45.0
    base_trace = surging_base_trace(duration_s)
    large_trace = generate_twitter_trace(
        rate_per_s=350, duration_ms=seconds(duration_s), seed=22
    )
    # A short scheduling period keeps the demand window fresh, so the
    # coordinator sees the surge while it is happening.
    rt_cfg = RuntimeSchedulerConfig(period_ms=seconds(8))
    streams = [
        StreamInput(
            name="bert-base",
            scheme=build_scheme("arlo", "bert-base", 7,
                                trace_hint=base_trace.slice_time(0, seconds(4)),
                                runtime_scheduler_config=rt_cfg),
            trace=base_trace,
        ),
        StreamInput(
            name="bert-large",
            scheme=build_scheme("arlo", "bert-large", 7,
                                trace_hint=large_trace.slice_time(0, seconds(4)),
                                runtime_scheduler_config=rt_cfg),
            trace=large_trace,
        ),
    ]
    print(f"pool: 14 GPUs, traces: {base_trace} + {large_trace}\n")
    result = run_multistream(
        streams,
        MultiStreamConfig(coordinator_period_ms=seconds(6), headroom=1.4),
    )

    print("pool partition over time (GPUs per stream):")
    for t, partition in result.partition_timeline:
        row = "  ".join(f"{k}={v:2d}" for k, v in sorted(partition.items()))
        print(f"  t={to_seconds(t):5.1f}s  {row}")
    print()
    for name, sr in sorted(result.streams.items()):
        print(
            f"{name:11s} served {sr.stats.count:6d} requests  "
            f"mean {sr.stats.mean_ms:7.2f} ms  p98 {sr.stats.p98_ms:8.2f} ms  "
            f"transfers in/out {sr.transfers_in}/{sr.transfers_out}  "
            f"final GPUs {sr.gpus_final}"
        )


if __name__ == "__main__":
    main()
