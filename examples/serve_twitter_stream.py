#!/usr/bin/env python
"""Serve a Twitter-like request stream with Arlo and the paper's
baselines (ST, DT, INFaaS) and print the Fig. 6-style comparison.

The workload is a synthetic production-like trace matching the
statistics of the Twitter trace the paper uses (median 21 tokens,
p98 = 72, recalibrated ×512/125), served on a 10-GPU cluster.

Run:  python examples/serve_twitter_stream.py [rate_per_s] [seconds]
"""

import sys

from repro import build_scheme, generate_twitter_trace, run_simulation
from repro.experiments.report import comparison_table, format_table
from repro.units import seconds


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 1_000.0
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 20.0

    trace = generate_twitter_trace(
        rate_per_s=rate, duration_ms=seconds(duration_s), seed=7
    )
    hint = trace.slice_time(0, seconds(min(5.0, duration_s / 4)))
    print(f"trace: {trace}")

    results = {}
    for name in ("st", "dt", "infaas", "arlo"):
        scheme = build_scheme(name, "bert-base", 10, trace_hint=hint)
        results[name] = run_simulation(scheme, trace)
        print(f"  {name}: served {results[name].stats.count} requests")

    rows = comparison_table(results)
    print()
    print(format_table(rows, title=f"BERT-Base @ {rate:g} req/s, 10 GPUs"))
    arlo, st = results["arlo"], results["st"]
    print(
        f"\nArlo mean latency reduction vs ST: "
        f"{100 * (1 - arlo.mean_ms / st.mean_ms):.1f}% "
        f"(paper Fig. 6a: 70.3%)"
    )


if __name__ == "__main__":
    main()
