#!/usr/bin/env python
"""Capacity planning with the analytical queueing model — no simulation.

Answers the operator question "how many GPUs do I need for X req/s?"
for each serving scheme using the Erlang-C M/D/c predictions from
:mod:`repro.analysis`, then spot-checks one configuration against the
discrete-event simulator.

Run:  python examples/capacity_planning.py [rate_per_s]
"""

import sys

import numpy as np

from repro.analysis import predict_allocation, predict_uniform_scheme
from repro.baselines.allocators import even_allocation
from repro.baselines.schemes import build_scheme
from repro.core.allocation import AllocationProblem, solve_allocation
from repro.core.bins import LengthBins
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.sim.simulation import run_simulation
from repro.units import seconds
from repro.workload.generator import poisson_trace
from repro.workload.lengths import LogNormalLengths


def arlo_allocation(registry, lengths, rate, gpus, slo_ms):
    """Solve Eqs. 1-7 for the expected per-bin demand."""
    bins = LengthBins.from_registry(registry)
    rng = np.random.default_rng(0)
    sample = np.clip(lengths.sample(rng, 100_000), 1, bins.max_length)
    share = bins.histogram(sample) / 100_000
    demand = share * rate * slo_ms / 1_000.0
    problem = AllocationProblem.from_profiles(gpus, demand, list(registry))
    return solve_allocation(problem, relax=True).allocation


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 1_200.0
    model = bert_base()
    registry = build_polymorph_set(model)
    lengths = LogNormalLengths.from_quantiles(
        86, 295, max_length=model.max_length
    )

    print(f"target: {rate:g} req/s of Twitter-like traffic, "
          f"SLO {model.slo_ms:.0f} ms\n")
    print(f"{'GPUs':>4}  {'ST mean':>9}  {'DT mean':>9}  "
          f"{'Arlo(even)':>10}  {'Arlo(ILP)':>10}")
    chosen = None
    for gpus in (4, 6, 8, 10, 14, 20):
        st = predict_uniform_scheme(model, gpus, lengths, rate)
        dt = predict_uniform_scheme(model, gpus, lengths, rate, dynamic=True)
        even = predict_allocation(
            registry, even_allocation(len(registry), gpus), lengths, rate
        )
        ilp_alloc = arlo_allocation(registry, lengths, rate, gpus,
                                    model.slo_ms)
        ilp = predict_allocation(registry, ilp_alloc, lengths, rate)

        def fmt(p):
            return f"{p.mean_latency_ms:8.2f}ms" if p.is_stable else "  unstable"

        print(f"{gpus:>4}  {fmt(st)}  {fmt(dt)}  {fmt(even):>10}  "
              f"{fmt(ilp):>10}")
        if chosen is None and ilp.is_stable and \
                ilp.mean_latency_ms < model.slo_ms / 10:
            chosen = (gpus, ilp_alloc, ilp)

    if chosen is None:
        print("\nno configuration satisfied the planning target")
        return
    gpus, alloc, predicted = chosen
    print(f"\nplanning pick: {gpus} GPUs, allocation {alloc.tolist()}")
    trace = poisson_trace(lengths, rate, seconds(20), seed=1)
    scheme = build_scheme("arlo", "bert-base", gpus,
                          trace_hint=trace.slice_time(0, seconds(4)))
    result = run_simulation(scheme, trace)
    print(f"prediction {predicted.mean_latency_ms:.2f} ms vs "
          f"simulation {result.mean_ms:.2f} ms "
          f"(gap {abs(result.mean_ms - predicted.mean_latency_ms) / result.mean_ms:.0%})")


if __name__ == "__main__":
    main()
