#!/usr/bin/env python
"""Quickstart: serve variable-length requests with Arlo.

Builds the offline stage (polymorph set compilation + profiling) for
BERT-Base on a 6-GPU cluster, then pushes a handful of requests through
the Request Scheduler and prints where each one went and why.

Run:  python examples/quickstart.py
"""

from repro import ArloSystem


def main() -> None:
    arlo = ArloSystem.build("bert-base", num_gpus=6)

    print(f"model: {arlo.model.name}  SLO: {arlo.slo_ms:.0f} ms")
    print("polymorph set (max_length -> profiled service, capacity M):")
    for profile in arlo.registry:
        print(
            f"  {profile.max_length:4d} tokens -> "
            f"{profile.service_ms:6.2f} ms, M={profile.capacity}"
        )
    print(f"initial allocation: {arlo.cluster.allocation().tolist()}")
    print()

    requests = [(0.0, 20), (0.5, 87), (1.0, 300), (1.5, 505), (2.0, 64),
                (2.5, 130), (3.0, 130), (3.5, 130)]
    for now_ms, length in requests:
        decision, start, finish = arlo.handle(now_ms, length)
        runtime = arlo.registry[decision.level]
        note = "demoted" if decision.demoted else "ideal"
        print(
            f"t={now_ms:4.1f} ms  len={length:3d} -> runtime "
            f"max_length={runtime.max_length:3d} ({note}), "
            f"instance {decision.instance.instance_id}, "
            f"finishes at {finish:6.2f} ms"
        )

    print()
    print("snapshot:", arlo.snapshot())


if __name__ == "__main__":
    main()
