#!/usr/bin/env python
"""Regenerate every paper figure/table in one run, with ASCII plots.

The benchmark suite (`pytest benchmarks/ --benchmark-only`) is the
asserted, timed path; this script is the human-friendly one — it calls
the same `repro.experiments.figures` entry points at a configurable
scale, renders terminal plots, and prints the paper-vs-measured
summary lines.

Run:  python examples/paper_figures.py [scale]
      (scale 0.3 ≈ two minutes; 1.0 reproduces the full setup)
"""

import sys

import numpy as np

from repro.experiments import figures
from repro.experiments.plots import cdf_plot, line_plot, sparkline


def show_fig1():
    data = figures.fig1_length_distributions(rate_per_s=300)
    o = data["overall"]
    print("Fig. 1 — length distribution "
          f"(paper: median 21, p98 72, max ~125)")
    print(f"  measured: median {o['median']:.0f}, p98 {o['p98']:.0f}, "
          f"max {o['max']:.0f}")
    medians = [w["median"] for w in data["per_minute"]]
    print(f"  per-minute medians: {sparkline(medians, 40)}  "
          f"(σ={np.std(medians):.2f})\n")


def show_fig2():
    for model, ratio in (("bert-base", 4.22), ("bert-large", 5.25)):
        data = figures.fig2_latency_curves(model)
        lengths = np.asarray(data["lengths"], dtype=float)
        print(f"Fig. 2 — {model} (paper ratio {ratio}x; dynamic 1.22-3.56x)")
        print(line_plot(
            {
                "static": (lengths, np.asarray(data["static_ms"])),
                "dyn": (lengths, np.asarray(data["dynamic_ms"])),
                "padded512": (lengths, np.asarray(data["padded_512_ms"])),
            },
            width=56, height=10, xlabel="sequence length",
            ylabel="latency ms",
        ))
        print()


def show_fig4_fig5():
    f4 = figures.fig4_motivating_scenario()
    print("Fig. 4 — motivating scenario (SLO violations / 39 requests)")
    for k, v in f4.items():
        print(f"  {k:20s}: {v['slo_violations']}")
    f5 = figures.fig5_worked_example()
    print(f"Fig. 5 — worked example: len-200 request lands on "
          f"max_length {f5['chosen_max_length']} after "
          f"{f5['levels_peeked']} peeks (demoted={f5['demoted']})\n")


def show_serving(scale):
    print(f"Fig. 6 — testbed comparison (scale {scale})")
    for scenario, rows in figures.fig6(scale=scale, duration_s=30.0).items():
        by = {r["scheme"]: r for r in rows}
        arlo = by["arlo"]["mean_ms"]
        print(f"  {scenario}: " + "  ".join(
            f"{name}={by[name]['mean_ms']:.2f}ms" for name in
            ("st", "dt", "infaas", "arlo")))
        print(f"    Arlo mean reductions vs ST/DT/INFaaS: " + " / ".join(
            f"{100 * (1 - arlo / by[n]['mean_ms']):.0f}%"
            for n in ("st", "dt", "infaas")))
    print()
    data = figures.fig7(rates=(600, 1_000, 1_400, 1_800), scale=scale,
                        duration_s=12.0)
    print("Fig. 7 — mean latency vs load (paper: ST deteriorates first)")
    rates = np.asarray(data["rates"], dtype=float)
    print(line_plot(
        {name: (rates, np.minimum(np.asarray(vals), 100.0))
         for name, vals in data["mean_ms"].items()},
        width=48, height=10, xlabel="req/s", ylabel="mean ms (clipped)",
    ))
    print()


def show_fig8(scale):
    data = figures.fig8(scale=scale, duration_s=90.0)
    print("Fig. 8 — auto-scaling (paper: Arlo 5.49 GPUs < DT 6.38 < "
          "INFaaS 6.80 < ST 8.13)")
    for name in ("arlo", "dt", "infaas", "st"):
        d = data[name]
        print(f"  {name:7s} time-weighted GPUs {d['time_weighted_gpus']:5.2f}"
              f"  p98 {d['p98_ms']:8.1f} ms")
    print()


def show_fig10_11_12(scale):
    print(f"Fig. 10 — large-scale bursty (scale {scale})")
    for scenario, rows in figures.fig10(scale=scale, duration_s=20.0).items():
        by = {r["scheme"]: r for r in rows}
        print(f"  {scenario}: " + "  ".join(
            f"{n}={by[n]['mean_ms']:.1f}ms" for n in
            ("st", "dt", "infaas", "arlo")))
    print()
    data = figures.fig11(counts=(2, 4, 8, 16), scale=0.3, duration_s=20.0)
    print("Fig. 11 — runtime count (paper: 2 unusable, 8 ≈ 16)")
    for n, d in data.items():
        print(f"  N={n:2d}: mean {d['mean_ms']:8.2f} ms   "
              f"violations {d['slo_violation_%']:5.1f}%")
    print()
    data = figures.fig12(scale=0.6, duration_s=60.0)
    allocs = np.asarray(data["allocations"])
    print("Fig. 12 — GPUs per runtime across scheduler decisions")
    for j, ml in enumerate(data["max_lengths"]):
        print(f"  max_len {ml:4d}: {sparkline(allocs[:, j], 32)}")
    print()


def show_tables(scale):
    rows = figures.table2(repeats=3)
    print("Table 2 — solve time (paper: 0.156 / 0.623 / 2.612 s)")
    for r in rows:
        print(f"  {r.num_gpus:5d} GPUs, {r.num_runtimes:2d} runtimes "
              f"[{r.solver}]: {r.solve_time_s:.3f} s")
    print()
    t3 = figures.table3(scale=scale, duration_s=45.0)
    by = {r["scheme"]: r for r in t3}
    print("Table 3 — allocation ablation (paper: offline schemes fail)")
    for name in ("arlo", "arlo-even", "arlo-global"):
        print(f"  {name:12s}: mean {by[name]['mean_ms']:9.1f} ms")
    print()
    # Dispatch differences need a minimum cluster size to materialise.
    t4 = figures.table4(scale=max(min(scale, 0.6), 0.5), duration_s=30.0)
    print("Table 4 — dispatch ablation (paper: RS never loses)")
    for trace, schemes in t4.items():
        print(f"  {trace}: " + "  ".join(
            f"{n.replace('arlo', 'RS').replace('RS-', '')}="
            f"{d['mean_ms']:.1f}ms" for n, d in schemes.items()))
    print()


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    show_fig1()
    show_fig2()
    show_fig4_fig5()
    show_serving(scale)
    show_fig8(scale)
    show_fig10_11_12(min(scale, 0.1))
    show_tables(scale)
    print("done — see EXPERIMENTS.md for the asserted paper-vs-measured "
          "comparison.")


if __name__ == "__main__":
    main()
