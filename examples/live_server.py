#!/usr/bin/env python
"""Embed Arlo in a live serving loop (the §1 "works with existing
serving systems" integration surface).

Drives an :class:`repro.serve.ArloServer` with a Poisson client against
a virtual clock: requests stream in, completions settle as time
advances, and Runtime Scheduler periods fire on schedule — exactly the
control flow a host serving system (e.g. a Triton backend) would run.

Run:  python examples/live_server.py [rate_per_s] [seconds]
"""

import sys

import numpy as np

from repro.core.arlo import ArloConfig, ArloSystem
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.serve import ArloServer, VirtualClock
from repro.units import seconds
from repro.workload.lengths import LogNormalLengths


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 800.0
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 30.0

    arlo = ArloSystem.build(
        "bert-base", num_gpus=6,
        config=ArloConfig(
            num_gpus=6,
            runtime_scheduler=RuntimeSchedulerConfig(period_ms=seconds(10)),
        ),
    )
    clock = VirtualClock()
    server = ArloServer(arlo, clock)
    lengths = LogNormalLengths.from_quantiles(86, 295, max_length=512)
    rng = np.random.default_rng(7)

    next_report = seconds(5)
    t = 0.0
    while t < seconds(duration_s):
        t += rng.exponential(1_000.0 / rate)
        clock.advance(t - clock.now_ms())
        server.submit(int(lengths.sample(rng, 1)[0]))
        if clock.now_ms() >= next_report:
            snap = server.snapshot()
            print(
                f"t={clock.now_ms() / 1000:5.1f}s  completed="
                f"{snap['completed']:6d}  in-flight={snap['in_flight']:3d}  "
                f"mean={snap['mean_latency_ms']:6.2f} ms  "
                f"allocation={snap['allocation']}"
            )
            next_report += seconds(5)

    server.drain()
    snap = server.snapshot()
    print(
        f"\nfinal: {snap['completed']} requests, mean "
        f"{snap['mean_latency_ms']:.2f} ms, "
        f"{snap['reschedules']} scheduler periods, "
        f"demotion rate {snap['dispatch']['demotion_rate']:.1%}"
    )


if __name__ == "__main__":
    main()
