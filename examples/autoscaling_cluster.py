#!/usr/bin/env python
"""Auto-scaling under a bursty BERT-Large stream (the Fig. 8 setup).

Starts with 5 GPUs, enables the §4 target-tracking autoscaler and
serves a highly varying Twitter-Bursty trace; prints the GPU-count
timeline and the time-weighted GPU usage per scheme.

Run:  python examples/autoscaling_cluster.py [seconds]
"""

import sys

from repro.baselines.schemes import build_scheme
from repro.cluster.autoscaler import AutoscalerConfig
from repro.runtimes.models import bert_large
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds, to_seconds
from repro.workload.twitter import generate_twitter_trace


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 90.0
    model = bert_large()
    trace = generate_twitter_trace(
        rate_per_s=450, duration_ms=seconds(duration_s),
        pattern="bursty", seed=80, drift_scale=0.12,
    )
    hint = trace.slice_time(0, seconds(5))
    config = SimulationConfig(
        enable_autoscaler=True,
        autoscaler=AutoscalerConfig(
            slo_ms=model.slo_ms, min_gpus=5, max_gpus=15, window_size=256,
            scale_in_period_ms=30_000.0,
        ),
    )

    print(f"trace: {trace}\n")
    for name in ("st", "dt", "infaas", "arlo"):
        scheme = build_scheme(name, "bert-large", 5, trace_hint=hint)
        result = run_simulation(scheme, trace, config)
        timeline = " -> ".join(
            f"{count}@{to_seconds(t):.0f}s"
            for t, count in result.metrics.gpu_timeline
        )
        print(f"{name:7s} time-weighted GPUs: {result.time_weighted_gpus:5.2f}"
              f"  p98: {result.p98_ms:7.1f} ms"
              f"  scale-outs: {result.control_stats['scale_outs']}"
              f"  scale-ins: {result.control_stats['scale_ins']}")
        print(f"        timeline: {timeline}")
    print("\npaper Fig. 8: Arlo 5.49 GPUs < DT 6.38 < INFaaS 6.80 < ST 8.13,"
          "\nwith Arlo also holding the best 98%ile latency (330 ms).")


if __name__ == "__main__":
    main()
