#!/usr/bin/env python
"""Dispatching strategies head-to-head: Algorithm 1 vs ILB vs IG.

Reproduces the paper's two dispatch studies in one script:

1. the Fig. 4 motivating scenario — a burst of short requests followed
   by a burst of long ones on a tiny 4-GPU cluster, where the ideal
   policy and the greedy policy each violate SLOs that smart demotion
   avoids;
2. a Table 4-style run — RS vs ILB vs IG on a bursty BERT-Large trace.

Run:  python examples/dispatcher_ablation.py
"""

import numpy as np

from repro.baselines.dispatchers import (
    ArloDispatcher,
    InterGroupGreedy,
    IntraGroupLoadBalance,
)
from repro.baselines.schemes import build_scheme
from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import ArloRequestScheduler, RequestSchedulerConfig
from repro.runtimes.compiler import SimulatedCompiler
from repro.runtimes.models import bert_large
from repro.runtimes.profiler import OfflineProfiler
from repro.runtimes.registry import RuntimeRegistry
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace

SLO_MS = 40.0


def build_dispatcher(kind: str):
    model = bert_large()
    compiler, profiler = SimulatedCompiler(), OfflineProfiler(noise=0.0)
    runtimes = compiler.compile_polymorph_set(model, [128, 256, 512])
    registry = RuntimeRegistry(profiles=profiler.profile_set(runtimes, SLO_MS))
    state = ClusterState.bootstrap(registry, [2, 1, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    if kind == "RS":
        scheduler = ArloRequestScheduler(
            registry=registry, mlq=mlq,
            config=RequestSchedulerConfig(max_peek_levels=3),
        )
        return ArloDispatcher(scheduler=scheduler)
    cls = IntraGroupLoadBalance if kind == "ILB" else InterGroupGreedy
    return cls(registry=registry, mlq=mlq)


def motivating_example() -> None:
    print("=== Fig. 4 motivating scenario (4 GPUs: 2x128, 1x256, 1x512) ===")
    times = np.concatenate([np.arange(30) * 0.5, 20.0 + np.arange(9) * 0.5])
    lengths = np.concatenate([
        np.full(30, 100), np.linspace(257, 512, 9).astype(int)
    ])
    for kind in ("ILB", "IG", "RS"):
        dispatcher = build_dispatcher(kind)
        violations = 0
        for t, ln in zip(times, lengths):
            _, _, finish = dispatcher.dispatch(float(t), int(ln))
            if finish - t > SLO_MS:
                violations += 1
        label = {"ILB": "ideal policy (least padding)",
                 "IG": "greedy (least busy anywhere)",
                 "RS": "Arlo Request Scheduler"}[kind]
        print(f"  {kind:3s} — {label:32s}: {violations:2d}/39 SLO violations")
    print()


def table4_style_run() -> None:
    print("=== Table 4-style run (bursty BERT-Large, 10 GPUs) ===")
    trace = generate_twitter_trace(
        rate_per_s=700, duration_ms=seconds(30), pattern="bursty",
        seed=42, drift_scale=0.14,
    )
    hint = trace.slice_time(0, seconds(5))
    for name, label in (("arlo", "RS"), ("arlo-ilb", "ILB"),
                        ("arlo-ig", "IG")):
        scheme = build_scheme(name, "bert-large", 10, trace_hint=hint)
        result = run_simulation(scheme, trace,
                                SimulationConfig(warmup_ms=seconds(2)))
        print(f"  {label:3s}: mean {result.mean_ms:7.2f} ms   "
              f"p98 {result.p98_ms:8.2f} ms")


def main() -> None:
    motivating_example()
    table4_style_run()


if __name__ == "__main__":
    main()
