"""Setup shim so the package installs in offline environments.

``pip install -e .`` requires the ``wheel`` package for PEP 660 editable
installs; environments without it can run ``python setup.py develop``
instead. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
